//! End-to-end join-processing benchmarks: the cost of building pre-computed filter
//! banks over the synthetic IMDB tables and of evaluating JOB-light scans through
//! them. Together with `filter_ops` this covers the §10.8 run-time claims in the
//! context the paper actually targets (scan reduction), not just microbenchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ccf_bench::joblight_experiments::JobLightContext;
use ccf_core::sizing::VariantKind;
use ccf_core::{AnyCcf, ConditionalFilter};
use ccf_join::bridge::{ccf_attrs_for_row, ccf_predicate_for};
use ccf_join::filters::{FilterBank, FilterConfig};
use ccf_join::reduction::evaluate_query;
use ccf_shard::ShardedCcf;
use ccf_workloads::imdb::TableId;
use ccf_workloads::multiset::DuplicateDistribution;
use ccf_workloads::strkeys::StringKeyStream;

fn context() -> JobLightContext {
    JobLightContext::generate(512, 0xBE7C)
}

fn bench_bank_build(c: &mut Criterion) {
    let ctx = context();
    let total_rows: usize = ctx.db.total_rows();
    let mut group = c.benchmark_group("filter_bank_build");
    group.throughput(Throughput::Elements(total_rows as u64));
    for variant in [VariantKind::Chained, VariantKind::Bloom, VariantKind::Mixed] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{variant:?}")),
            &variant,
            |b, &variant| {
                b.iter(|| {
                    let bank = FilterBank::build(&ctx.db, FilterConfig::small(variant));
                    black_box(bank.total_ccf_bits())
                })
            },
        );
    }
    group.finish();
}

fn bench_scan_reduction(c: &mut Criterion) {
    let ctx = context();
    let bank = FilterBank::build(&ctx.db, FilterConfig::small(VariantKind::Chained));
    let query = ctx
        .workload
        .queries
        .iter()
        .find(|q| q.tables.len() >= 3 && q.tables.iter().all(|t| t.table != TableId::CastInfo))
        .or_else(|| ctx.workload.queries.iter().find(|q| q.tables.len() >= 3))
        .expect("multi-join query exists")
        .clone();

    // Probe throughput: every cast_info row against the query's tables' CCFs — the
    // §10.8 "matches per second" metric in its natural setting.
    let cast_info = ctx.db.table(TableId::CastInfo);
    let others: Vec<_> = query
        .tables
        .iter()
        .filter(|qt| qt.table != TableId::CastInfo)
        .map(|qt| (qt.table, ccf_predicate_for(qt)))
        .collect();

    let mut group = c.benchmark_group("scan_reduction");
    group.throughput(Throughput::Elements(cast_info.num_rows() as u64));
    group.bench_function("ccf_probe_per_row", |b| {
        b.iter(|| {
            let mut survivors = 0usize;
            for row in 0..cast_info.num_rows() {
                let key = cast_info.join_keys[row];
                if others
                    .iter()
                    .all(|(tid, pred)| bank.table(*tid).ccf.query(key, pred))
                {
                    survivors += 1;
                }
            }
            black_box(survivors)
        })
    });
    group.bench_function("evaluate_full_query", |b| {
        b.iter(|| black_box(evaluate_query(&ctx.db, &query, &bank).len()))
    });
    group.finish();
}

fn bench_single_table_probe(c: &mut Criterion) {
    let ctx = context();
    let table = ctx.db.table(TableId::MovieCompanies);
    let mut group = c.benchmark_group("single_table_probe");
    group.throughput(Throughput::Elements((table.num_rows() / 10) as u64));
    for variant in [VariantKind::Chained, VariantKind::Mixed] {
        let bank = FilterBank::build(&ctx.db, FilterConfig::small(variant));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{variant:?}")),
            &variant,
            |b, _| {
                let filters = bank.table(TableId::MovieCompanies);
                b.iter(|| {
                    let mut hits = 0usize;
                    for row in (0..table.num_rows()).step_by(10) {
                        let attrs = ccf_attrs_for_row(table, row);
                        let pred = ccf_core::Predicate::any(2).and_eq(0, attrs[0]);
                        if filters.ccf.query(black_box(table.join_keys[row]), &pred) {
                            hits += 1;
                        }
                    }
                    black_box(hits)
                })
            },
        );
    }
    group.finish();
}

/// The `u64` surrogate of a string key: its numeric suffix, mixed. Gives the u64
/// baseline the *identical* workload shape (same duplicate structure on insertion,
/// same hit/miss pattern on probing) so the measured delta is the `FilterKey`
/// lowering cost, not a probe-mix difference.
fn surrogate(key: &str) -> u64 {
    key.rsplit('-')
        .next()
        .and_then(|n| n.parse::<u64>().ok())
        .expect("stream keys end in a numeric suffix")
        .wrapping_mul(0x9E3779B97F4A7C15)
}

/// Typed-key probe cost: the same batched probe stream keyed by `u64` surrogates
/// (identity lowering) versus strings (lookup3 lowering), through a single filter and
/// through the sharded service — quantifying what the `FilterKey` layer costs when
/// join keys arrive as the strings the paper's deployments actually join on.
fn bench_string_keys(c: &mut Criterion) {
    let stream = StringKeyStream::new("user", DuplicateDistribution::zipf_with_mean(3.0), 2, 0xCCF);
    let rows = stream.generate(20_000);
    let probes = stream.probes(8_000, 20_000);
    let probe_refs: Vec<&str> = probes.iter().map(String::as_str).collect();
    let u64_probes: Vec<u64> = probes.iter().map(|p| surrogate(p)).collect();

    let build = AnyCcf::builder()
        .variant(VariantKind::Mixed)
        .num_attrs(2)
        .expected_rows(rows.len())
        .auto_grow()
        .seed(7);
    let mut filter = build.build().expect("builder params are valid");
    let mut u64_filter = build.build().expect("builder params are valid");
    for r in &rows {
        filter
            .insert_row(r.key.as_str(), &r.attrs)
            .expect("auto-grow filter absorbs the stream");
        u64_filter
            .insert_row(surrogate(&r.key), &r.attrs)
            .expect("auto-grow filter absorbs the surrogate stream");
    }
    let sharded = ShardedCcf::try_new(
        VariantKind::Mixed,
        filter.params().sized_for_entries(rows.len() / 4, 0.85),
        4,
    )
    .expect("shard params are valid");
    let sharded_outcomes = sharded.insert_batch(
        &rows
            .iter()
            .map(|r| (r.key.as_str(), r.attrs.as_slice()))
            .collect::<Vec<_>>(),
    );
    assert!(sharded_outcomes.iter().all(|o| o.is_ok()));

    let mut group = c.benchmark_group("string_keys");
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.bench_function("contains_batch/u64", |b| {
        b.iter(|| black_box(u64_filter.contains_key_batch(black_box(&u64_probes))))
    });
    group.bench_function("contains_batch/str", |b| {
        b.iter(|| black_box(filter.contains_key_batch(black_box(&probe_refs))))
    });
    group.bench_function("contains_batch/str_sharded", |b| {
        b.iter(|| black_box(sharded.contains_key_batch(black_box(&probe_refs))))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_bank_build, bench_scan_reduction, bench_single_table_probe, bench_string_keys
}
criterion_main!(benches);
