//! Criterion bench for the deletion work: sustained sliding-window churn
//! (insert + delete per steady-state arrival) on the chained and mixed variants and
//! the sharded service, plus the raw point-delete throughput of a chained filter.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use ccf_core::{AnyCcf, CcfParams, ConditionalFilter, VariantKind};
use ccf_shard::ShardedCcf;
use ccf_workloads::churn::{ChurnOp, SlidingWindowChurn};

const WINDOW: usize = 4_000;
const ARRIVALS: usize = 20_000;
const KEYSPACE: u64 = 512;

fn churn_params(seed: u64) -> CcfParams {
    CcfParams {
        num_attrs: 2,
        seed,
        ..CcfParams::default()
    }
    .sized_for_entries(WINDOW, 0.7)
    .with_auto_grow()
}

fn ops() -> Vec<ChurnOp> {
    SlidingWindowChurn::new(WINDOW, 2, KEYSPACE, 0xC4DE).ops(ARRIVALS)
}

fn bench_churn_variants(c: &mut Criterion) {
    let stream = ops();
    let mut group = c.benchmark_group("churn_replay");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for (kind, name) in [
        (VariantKind::Chained, "chained"),
        (VariantKind::Mixed, "mixed"),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut filter = AnyCcf::new(kind, churn_params(0xC4DE));
                let mut applied = 0usize;
                for op in &stream {
                    match op {
                        ChurnOp::Insert(row) => {
                            let _ = filter.insert_row(row.key, &row.attrs);
                        }
                        ChurnOp::Delete(row) => {
                            let _ = filter.delete_row(row.key, &row.attrs);
                        }
                    }
                    applied += 1;
                }
                black_box(applied)
            })
        });
    }
    group.finish();
}

fn bench_sharded_churn(c: &mut Criterion) {
    let stream = ops();
    let mut group = c.benchmark_group("churn_replay_sharded");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("chained_x4", |b| {
        b.iter(|| {
            // The service's own sizing policy (per-shard slice of the window), so
            // the bench measures the geometry a real deployment would construct.
            let service = ShardedCcf::sized_for_entries(
                VariantKind::Chained,
                CcfParams {
                    num_attrs: 2,
                    seed: 0xC4DE,
                    ..CcfParams::default()
                }
                .with_auto_grow(),
                4,
                WINDOW,
                0.7,
            );
            let mut applied = 0usize;
            for op in &stream {
                match op {
                    ChurnOp::Insert(row) => {
                        let _ = service.insert(row.key, &row.attrs);
                    }
                    ChurnOp::Delete(row) => {
                        let _ = service.delete_row(row.key, &row.attrs);
                    }
                }
                applied += 1;
            }
            black_box(applied)
        })
    });
    group.finish();
}

fn bench_point_deletes(c: &mut Criterion) {
    // Raw delete throughput: fill a chained filter, then time delete_row over the
    // stored rows (re-inserting between iterations is part of the measured loop to
    // keep the filter occupied; inserts and deletes are counted as one element).
    let rows: Vec<(u64, [u64; 2])> = (0..WINDOW as u64)
        .map(|k| (k % KEYSPACE, [k % 251, (k / KEYSPACE) % 251]))
        .collect();
    let mut filter = AnyCcf::new(VariantKind::Chained, churn_params(0xDE1E));
    for (k, a) in &rows {
        filter.insert_row(*k, a).unwrap();
    }
    let mut group = c.benchmark_group("chained_delete_reinsert");
    group.throughput(Throughput::Elements(2 * rows.len() as u64));
    group.bench_function("delete_then_reinsert", |b| {
        b.iter(|| {
            let mut removed = 0usize;
            for (k, a) in &rows {
                if filter.delete_row(*k, a) == Ok(true) {
                    removed += 1;
                }
            }
            for (k, a) in &rows {
                let _ = filter.insert_row(*k, a);
            }
            black_box(removed)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_churn_variants,
    bench_sharded_churn,
    bench_point_deletes
);
criterion_main!(benches);
