//! Criterion bench for the sharded service: batched key-membership throughput across
//! shard and thread counts on a Zipf probe stream, against the same service run
//! single-threaded (shards = threads = 1 is the single-filter-equivalent baseline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ccf_bench::sharded_experiments::{ProbeWorkload, ShardedProbeExperiment};

const KEYS: usize = 50_000;
const PROBES: usize = 100_000;
const BATCH: usize = 4096;

fn bench_sharded_probes(c: &mut Criterion) {
    let experiment = ShardedProbeExperiment::new(ProbeWorkload::Zipf, KEYS, PROBES, 0x5AD);
    let mut group = c.benchmark_group("sharded_probe");
    group.throughput(Throughput::Elements(PROBES as u64));
    for shards in [1usize, 2, 4, 8] {
        let mut service = experiment.build_service(shards);
        for threads in [1usize, 2, 4] {
            if threads > shards {
                continue;
            }
            service.set_threads(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("{shards}shards"), format!("{threads}threads")),
                &threads,
                |b, _| {
                    b.iter(|| {
                        let mut hits = 0usize;
                        for chunk in experiment.probe_stream().chunks(BATCH) {
                            hits += service
                                .contains_key_batch(black_box(chunk))
                                .iter()
                                .filter(|&&h| h)
                                .count();
                        }
                        black_box(hits)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_probes);
criterion_main!(benches);
