//! Microbenchmarks of the substrates the CCF is built from: the Jenkins lookup3 hash,
//! the salted 64-bit hashers, Bloom filters, the standard cuckoo filter and the cuckoo
//! hash table. These bound the per-operation cost budget of the CCF variants measured
//! in `filter_ops`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use ccf_bloom::BloomFilter;
use ccf_cuckoo::{CuckooFilter, CuckooFilterParams, CuckooHashTable};
use ccf_hash::{hashlittle, HashFamily, SaltedHasher};

fn bench_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashing");
    let n = 100_000u64;
    group.throughput(Throughput::Elements(n));
    let hasher = SaltedHasher::new(42);
    group.bench_function("salted_hash_u64", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..n {
                acc ^= hasher.hash_u64(black_box(i));
            }
            black_box(acc)
        })
    });
    let payload = b"movie_id=123456,company_type_id=2";
    group.bench_function("lookup3_hashlittle_34B", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..n as u32 {
                acc ^= hashlittle(black_box(payload), i);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom_filter");
    let n = 100_000u64;
    group.throughput(Throughput::Elements(n));
    group.bench_function("insert", |b| {
        b.iter(|| {
            let mut f = BloomFilter::with_capacity(n as usize, 0.01, &HashFamily::new(1));
            for i in 0..n {
                f.insert(black_box(i));
            }
            black_box(f.saturation())
        })
    });
    let mut filled = BloomFilter::with_capacity(n as usize, 0.01, &HashFamily::new(1));
    for i in 0..n {
        filled.insert(i);
    }
    group.bench_function("query", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for i in 0..n {
                if filled.contains(black_box(i * 2)) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_cuckoo(c: &mut Criterion) {
    let mut group = c.benchmark_group("cuckoo_substrate");
    let n = 100_000u64;
    group.throughput(Throughput::Elements(n));
    group.bench_function("filter_insert", |b| {
        b.iter(|| {
            let mut f = CuckooFilter::new(CuckooFilterParams::for_capacity(n as usize, 12, 3));
            for i in 0..n {
                let _ = f.insert(black_box(i));
            }
            black_box(f.load_factor())
        })
    });
    let mut filled = CuckooFilter::new(CuckooFilterParams::for_capacity(n as usize, 12, 3));
    for i in 0..n {
        let _ = filled.insert(i);
    }
    group.bench_function("filter_query", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for i in 0..n {
                if filled.contains(black_box(i * 3)) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.bench_function("hash_table_insert_get", |b| {
        b.iter(|| {
            let mut t: CuckooHashTable<u64> = CuckooHashTable::with_capacity(n as usize, 9);
            for i in 0..n {
                t.insert(black_box(i), i * 2);
            }
            let mut acc = 0u64;
            for i in 0..n {
                acc ^= *t.get(black_box(i)).unwrap();
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_hashing, bench_bloom, bench_cuckoo
}
criterion_main!(benches);
