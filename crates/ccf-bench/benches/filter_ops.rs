//! §10.8 run-time performance: insertion and query throughput of every CCF variant.
//!
//! The paper reports that its (unoptimized, single-threaded C++) implementation
//! processes ≥ 1 million matches per second; these benches measure the same metric for
//! the Rust implementation — per-variant insert throughput, key+predicate query
//! throughput on present and absent keys, and predicate-only query (filter derivation)
//! latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ccf_core::sizing::VariantKind;
use ccf_core::{AnyCcf, BloomCcf, CcfParams, ChainedCcf, ConditionalFilter, Predicate};
use ccf_workloads::multiset::{DuplicateDistribution, MultisetStream, Row};

fn params(num_attrs: usize) -> CcfParams {
    CcfParams {
        num_buckets: 1 << 14,
        entries_per_bucket: 6,
        fingerprint_bits: 12,
        attr_bits: 8,
        num_attrs,
        max_dupes: 3,
        max_chain: None,
        bloom_bits: 16,
        bloom_hashes: 2,
        seed: 0xBE7C,
        ..CcfParams::default()
    }
}

fn workload(rows: usize) -> Vec<Row> {
    MultisetStream::new(DuplicateDistribution::zipf_with_mean(4.0), 2, 0xBE7C).generate(rows)
}

fn filled_filter(kind: VariantKind, rows: &[Row]) -> AnyCcf {
    let mut f = AnyCcf::new(kind, params(2));
    for row in rows {
        let _ = f.insert_row(row.key, &row.attrs);
    }
    f
}

fn bench_insert(c: &mut Criterion) {
    let rows = workload(50_000);
    let mut group = c.benchmark_group("insert_row");
    group.throughput(Throughput::Elements(rows.len() as u64));
    for kind in [
        VariantKind::Plain,
        VariantKind::Chained,
        VariantKind::Bloom,
        VariantKind::Mixed,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut f = AnyCcf::new(kind, params(2));
                    for row in &rows {
                        let _ = f.insert_row(black_box(row.key), black_box(&row.attrs));
                    }
                    black_box(f.occupied_entries())
                })
            },
        );
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let rows = workload(50_000);
    let queries = 20_000usize;
    let mut group = c.benchmark_group("query_key_predicate");
    group.throughput(Throughput::Elements(queries as u64));
    for kind in [
        VariantKind::Plain,
        VariantKind::Chained,
        VariantKind::Bloom,
        VariantKind::Mixed,
    ] {
        let filter = filled_filter(kind, &rows);
        group.bench_with_input(
            BenchmarkId::new("present", format!("{kind:?}")),
            &filter,
            |b, filter| {
                b.iter(|| {
                    let mut hits = 0usize;
                    for row in rows.iter().take(queries) {
                        let pred = Predicate::any(2)
                            .and_eq(0, row.attrs[0])
                            .and_eq(1, row.attrs[1]);
                        if filter.query(black_box(row.key), black_box(&pred)) {
                            hits += 1;
                        }
                    }
                    black_box(hits)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("absent", format!("{kind:?}")),
            &filter,
            |b, filter| {
                b.iter(|| {
                    let pred = Predicate::any(2).and_eq(0, 123).and_eq(1, 456);
                    let mut hits = 0usize;
                    for key in 0..queries as u64 {
                        if filter.query(black_box(key + 10_000_000), black_box(&pred)) {
                            hits += 1;
                        }
                    }
                    black_box(hits)
                })
            },
        );
    }
    group.finish();
}

fn bench_predicate_only_queries(c: &mut Criterion) {
    let rows = workload(50_000);
    let mut group = c.benchmark_group("predicate_only_query");

    let mut bloom = BloomCcf::new(params(2));
    let mut chained = ChainedCcf::new(params(2));
    for row in &rows {
        let _ = bloom.insert_row(row.key, &row.attrs);
        let _ = chained.insert_row(row.key, &row.attrs);
    }
    let pred = Predicate::any(2).and_eq(0, rows[0].attrs[0]);

    group.bench_function("bloom_derive_cuckoo_filter", |b| {
        b.iter(|| black_box(bloom.predicate_filter(black_box(&pred))).len())
    });
    group.bench_function("chained_derive_marked_filter", |b| {
        b.iter(|| black_box(chained.predicate_filter(black_box(&pred))).size_bits())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_insert, bench_query, bench_predicate_only_queries
}
criterion_main!(benches);
