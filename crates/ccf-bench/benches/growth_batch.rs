//! Criterion bench for the growth/batch work: per-key vs batched probe loops on the
//! cuckoo substrate and the chained CCF, and the amortized cost of inserting to 4× a
//! filter's sized capacity with `auto_grow` enabled.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ccf_core::{CcfParams, ChainedCcf, Predicate};
use ccf_cuckoo::{CuckooFilter, CuckooFilterParams};

const KEYS: usize = 50_000;
const PROBES: usize = 100_000;

fn probe_stream() -> Vec<u64> {
    (0..PROBES as u64)
        .map(|i| {
            if i % 2 == 0 {
                (i / 2) % KEYS as u64
            } else {
                1_000_000_000 + i
            }
        })
        .collect()
}

fn bench_cuckoo_probes(c: &mut Criterion) {
    let mut filter = CuckooFilter::new(CuckooFilterParams::for_capacity(KEYS, 12, 0xBE7C));
    for k in 0..KEYS as u64 {
        filter.insert(k).unwrap();
    }
    let stream = probe_stream();
    let mut group = c.benchmark_group("cuckoo_probe");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("per_key", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &k in &stream {
                if filter.contains(black_box(k)) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.bench_function("batched", |b| {
        b.iter(|| {
            let hits = filter
                .contains_batch(black_box(&stream))
                .iter()
                .filter(|&&h| h)
                .count();
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_ccf_probes(c: &mut Criterion) {
    let mut filter = ChainedCcf::new(
        CcfParams {
            num_attrs: 2,
            seed: 0xBE7C,
            ..CcfParams::default()
        }
        .sized_for_entries(KEYS, 0.8),
    );
    for k in 0..KEYS as u64 {
        filter.insert_row(k, &[k % 7, k % 11]).unwrap();
    }
    let stream = probe_stream();
    let pred = Predicate::any(2).and_eq(0, 3);
    let mut group = c.benchmark_group("ccf_query");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("per_key", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &k in &stream {
                if filter.query(black_box(k), black_box(&pred)) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.bench_function("batched", |b| {
        b.iter(|| {
            let hits = filter
                .query_batch(black_box(&stream), black_box(&pred))
                .iter()
                .filter(|&&h| h)
                .count();
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_to_4x_capacity");
    for (name, sized_for) in [("n=10k", 10_000usize), ("n=40k", 40_000)] {
        group.throughput(Throughput::Elements(4 * sized_for as u64));
        group.bench_with_input(
            BenchmarkId::new("cuckoo_auto_grow", name),
            &sized_for,
            |b, &n| {
                b.iter(|| {
                    let mut f = CuckooFilter::new(
                        CuckooFilterParams::for_capacity(n, 12, 0xBE7C).with_auto_grow(),
                    );
                    for k in 0..(4 * n) as u64 {
                        f.insert(k).unwrap();
                    }
                    black_box(f.growth_bits())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cuckoo_presized", name),
            &sized_for,
            |b, &n| {
                // The baseline: a filter sized for the final population up front.
                b.iter(|| {
                    let mut f =
                        CuckooFilter::new(CuckooFilterParams::for_capacity(4 * n, 12, 0xBE7C));
                    for k in 0..(4 * n) as u64 {
                        f.insert(k).unwrap();
                    }
                    black_box(f.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cuckoo_probes, bench_ccf_probes, bench_growth
}
criterion_main!(benches);
