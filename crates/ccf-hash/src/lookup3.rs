//! A faithful Rust port of Bob Jenkins' `lookup3.c` (public domain, May 2006).
//!
//! The paper's C++ implementation uses lookup3 (§10.8), as does the original cuckoo
//! filter implementation, so the reproduction keeps the same hash. The three entry
//! points ported here are:
//!
//! * [`hashword`] — hash an array of `u32` words, returning a `u32`.
//! * [`hashlittle`] — hash a byte slice on a little-endian machine, returning a `u32`.
//! * [`hashlittle2`] — like `hashlittle` but returns two independent 32-bit hashes,
//!   which is convenient for deriving a 64-bit hash (`hashlittle2_u64`).
//!
//! The port operates on byte slices without any alignment tricks (the original uses
//! word-at-a-time reads when aligned); results are identical to the original for all
//! inputs on little-endian machines, verified by the test vectors from `lookup3.c`'s
//! own self-test (`driver2`/`driver5`).

/// `rot(x, k)` from lookup3.c: rotate a 32-bit word left by `k` bits.
#[inline(always)]
fn rot(x: u32, k: u32) -> u32 {
    x.rotate_left(k)
}

/// The `mix` macro from lookup3.c: mix three 32-bit values reversibly.
#[inline(always)]
fn mix(a: &mut u32, b: &mut u32, c: &mut u32) {
    *a = a.wrapping_sub(*c);
    *a ^= rot(*c, 4);
    *c = c.wrapping_add(*b);
    *b = b.wrapping_sub(*a);
    *b ^= rot(*a, 6);
    *a = a.wrapping_add(*c);
    *c = c.wrapping_sub(*b);
    *c ^= rot(*b, 8);
    *b = b.wrapping_add(*a);
    *a = a.wrapping_sub(*c);
    *a ^= rot(*c, 16);
    *c = c.wrapping_add(*b);
    *b = b.wrapping_sub(*a);
    *b ^= rot(*a, 19);
    *a = a.wrapping_add(*c);
    *c = c.wrapping_sub(*b);
    *c ^= rot(*b, 4);
    *b = b.wrapping_add(*a);
}

/// The `final` macro from lookup3.c: final mixing of three 32-bit values into `c`.
#[inline(always)]
fn final_mix(a: &mut u32, b: &mut u32, c: &mut u32) {
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 14));
    *a ^= *c;
    *a = a.wrapping_sub(rot(*c, 11));
    *b ^= *a;
    *b = b.wrapping_sub(rot(*a, 25));
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 16));
    *a ^= *c;
    *a = a.wrapping_sub(rot(*c, 4));
    *b ^= *a;
    *b = b.wrapping_sub(rot(*a, 14));
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 24));
}

/// Hash an array of `u32` words (lookup3's `hashword`).
///
/// `initval` is the previous hash or an arbitrary seed.
pub fn hashword(k: &[u32], initval: u32) -> u32 {
    let mut a: u32 = 0xdeadbeefu32
        .wrapping_add((k.len() as u32) << 2)
        .wrapping_add(initval);
    let mut b = a;
    let mut c = a;

    let mut rest = k;
    while rest.len() > 3 {
        a = a.wrapping_add(rest[0]);
        b = b.wrapping_add(rest[1]);
        c = c.wrapping_add(rest[2]);
        mix(&mut a, &mut b, &mut c);
        rest = &rest[3..];
    }
    match rest.len() {
        3 => {
            c = c.wrapping_add(rest[2]);
            b = b.wrapping_add(rest[1]);
            a = a.wrapping_add(rest[0]);
            final_mix(&mut a, &mut b, &mut c);
        }
        2 => {
            b = b.wrapping_add(rest[1]);
            a = a.wrapping_add(rest[0]);
            final_mix(&mut a, &mut b, &mut c);
        }
        1 => {
            a = a.wrapping_add(rest[0]);
            final_mix(&mut a, &mut b, &mut c);
        }
        _ => {} // zero-length tail: return c as-is, per lookup3.c
    }
    c
}

/// Read up to 4 little-endian bytes from `bytes` starting at `off`.
#[inline(always)]
fn le_word(bytes: &[u8], off: usize, n: usize) -> u32 {
    let mut w: u32 = 0;
    for i in 0..n {
        w |= (bytes[off + i] as u32) << (8 * i);
    }
    w
}

/// Core of `hashlittle`/`hashlittle2`: consumes the byte slice in 12-byte blocks.
fn hashlittle_core(key: &[u8], pc: u32, pb: u32) -> (u32, u32) {
    let length = key.len();
    let mut a: u32 = 0xdeadbeefu32.wrapping_add(length as u32).wrapping_add(pc);
    let mut b = a;
    let mut c = a.wrapping_add(pb);

    let mut off = 0usize;
    let mut len = length;
    // All but the last block: process 12 bytes at a time.
    while len > 12 {
        a = a.wrapping_add(le_word(key, off, 4));
        b = b.wrapping_add(le_word(key, off + 4, 4));
        c = c.wrapping_add(le_word(key, off + 8, 4));
        mix(&mut a, &mut b, &mut c);
        off += 12;
        len -= 12;
    }
    // Last block: affects all of (a, b, c). lookup3.c switches on the remaining
    // length; 0 remaining bytes returns (c, b) untouched by final().
    if len == 0 {
        return (c, b);
    }
    if len > 8 {
        c = c.wrapping_add(le_word(key, off + 8, len - 8));
        b = b.wrapping_add(le_word(key, off + 4, 4));
        a = a.wrapping_add(le_word(key, off, 4));
    } else if len > 4 {
        b = b.wrapping_add(le_word(key, off + 4, len - 4));
        a = a.wrapping_add(le_word(key, off, 4));
    } else {
        a = a.wrapping_add(le_word(key, off, len));
    }
    final_mix(&mut a, &mut b, &mut c);
    (c, b)
}

/// Hash a byte slice, returning a 32-bit value (lookup3's `hashlittle`).
pub fn hashlittle(key: &[u8], initval: u32) -> u32 {
    hashlittle_core(key, initval, 0).0
}

/// Hash a byte slice, returning two 32-bit values (lookup3's `hashlittle2`).
///
/// `(pc, pb)` seed the two outputs; the first returned value is the better-mixed one
/// ("*pc is better mixed than *pb" in the original comments).
pub fn hashlittle2(key: &[u8], pc: u32, pb: u32) -> (u32, u32) {
    hashlittle_core(key, pc, pb)
}

/// Convenience: a 64-bit hash built from `hashlittle2`, with the better-mixed word in
/// the high bits.
pub fn hashlittle2_u64(key: &[u8], seed: u64) -> u64 {
    let (c, b) = hashlittle2(key, seed as u32, (seed >> 32) as u32);
    ((c as u64) << 32) | (b as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Test vectors from lookup3.c's own self-test code.
    //
    // driver2 checks: hashlittle("", 0) == 0xdeadbeef
    //                 hashlittle("", 0xdeadbeef) == 0xbd5b7dde
    //                 hashlittle("Four score and seven years ago", 0) == 0x17770551
    //                 hashlittle("Four score and seven years ago", 1) == 0xcd628161
    #[test]
    fn hashlittle_reference_vectors() {
        assert_eq!(hashlittle(b"", 0), 0xdeadbeef);
        assert_eq!(hashlittle(b"", 0xdeadbeef), 0xbd5b7dde);
        assert_eq!(hashlittle(b"Four score and seven years ago", 0), 0x17770551);
        assert_eq!(hashlittle(b"Four score and seven years ago", 1), 0xcd628161);
    }

    // driver5 checks hashlittle2("", 0, 0) == (0xdeadbeef, 0xdeadbeef) and the
    // seeded combinations below.
    #[test]
    fn hashlittle2_reference_vectors() {
        let (c, b) = hashlittle2(b"", 0, 0);
        assert_eq!((c, b), (0xdeadbeef, 0xdeadbeef));
        let (c, b) = hashlittle2(b"", 0, 0xdeadbeef);
        assert_eq!((c, b), (0xbd5b7dde, 0xdeadbeef));
        let (c, b) = hashlittle2(b"", 0xdeadbeef, 0xdeadbeef);
        assert_eq!((c, b), (0x9c093ccd, 0xbd5b7dde));
        let (c, b) = hashlittle2(b"Four score and seven years ago", 0, 0);
        assert_eq!((c, b), (0x17770551, 0xce7226e6));
        let (c, b) = hashlittle2(b"Four score and seven years ago", 0, 1);
        assert_eq!((c, b), (0xe3607cae, 0xbd371de4));
        let (c, b) = hashlittle2(b"Four score and seven years ago", 1, 0);
        assert_eq!((c, b), (0xcd628161, 0x6cbea4b3));
    }

    #[test]
    fn hashword_matches_hashlittle_on_word_aligned_input() {
        // lookup3 documents that hashword and hashlittle agree on little-endian
        // machines when the input is a whole number of words.
        let words = [
            0x01020304u32,
            0x05060708,
            0x090a0b0c,
            0x0d0e0f10,
            0xdeadbeef,
        ];
        for n in 0..=words.len() {
            let bytes: Vec<u8> = words[..n].iter().flat_map(|w| w.to_le_bytes()).collect();
            assert_eq!(
                hashword(&words[..n], 0x9747b28c),
                hashlittle(&bytes, 0x9747b28c),
                "mismatch for {n} words"
            );
        }
    }

    #[test]
    fn different_seeds_give_different_hashes() {
        let h1 = hashlittle(b"conditional cuckoo filter", 1);
        let h2 = hashlittle(b"conditional cuckoo filter", 2);
        assert_ne!(h1, h2);
    }

    #[test]
    fn hashlittle2_u64_is_stable_and_seed_sensitive() {
        let a = hashlittle2_u64(b"movie_id=42", 7);
        let b = hashlittle2_u64(b"movie_id=42", 7);
        let c = hashlittle2_u64(b"movie_id=42", 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn all_tail_lengths_are_exercised() {
        // Exercise every residual length 0..=12 to cover the tail switch.
        let data: Vec<u8> = (0u8..64).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=32 {
            let h = hashlittle(&data[..len], 0);
            seen.insert(h);
        }
        // All 33 prefixes should hash to distinct values (no collisions expected for
        // such structured small inputs with lookup3).
        assert_eq!(seen.len(), 33);
    }
}
