//! Salted hash functions and hash-function families.
//!
//! The CCF needs several *independent* hash functions:
//!
//! * the key hash that selects the primary bucket ℓ,
//! * the fingerprint hash producing κ,
//! * the partial-key hash `h(κ)` used to derive the alternate bucket ℓ′ = ℓ ⊕ h(κ),
//! * the chain hash `h(min(ℓ, ℓ′), κ)` of §6.2,
//! * one hash per attribute column for attribute fingerprints,
//! * `k` hashes for each Bloom attribute sketch.
//!
//! All of them are derived from one `u64` seed via [`HashFamily`], so an experiment run
//! is reproducible from a single salt (§10.1 averages over 20 runs with random salts).

use crate::lookup3::hashlittle2_u64;
use crate::mix::{hash_u64, hash_u64_pair, splitmix64};

/// A single salted hash function over `u64` values and byte strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaltedHasher {
    seed: u64,
}

impl SaltedHasher {
    /// Create a hasher with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The seed this hasher was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Hash a 64-bit value.
    #[inline]
    pub fn hash_u64(&self, value: u64) -> u64 {
        hash_u64(value, self.seed)
    }

    /// Hash a pair of 64-bit values (order-sensitive).
    #[inline]
    pub fn hash_pair(&self, a: u64, b: u64) -> u64 {
        hash_u64_pair(a, b, self.seed)
    }

    /// Hash a byte slice using Jenkins lookup3 (`hashlittle2`), seeded by this salt.
    #[inline]
    pub fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        hashlittle2_u64(bytes, self.seed)
    }

    /// Hash a value into the range `[0, m)`.
    ///
    /// Uses the "multiply-shift" / Lemire reduction rather than a modulo so the result
    /// is unbiased for non-power-of-two `m` and cheap to compute.
    #[inline]
    pub fn bucket_of(&self, value: u64, m: usize) -> usize {
        debug_assert!(m > 0);
        let h = self.hash_u64(value);
        // 128-bit multiply-high reduction.
        (((h as u128) * (m as u128)) >> 64) as usize
    }
}

/// A family of independent salted hashers derived from one master seed.
///
/// Index `i` of the family is deterministic: `family.hasher(i)` always returns the same
/// hasher for the same master seed, and hashers at distinct indices behave
/// independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashFamily {
    master_seed: u64,
}

impl HashFamily {
    /// Create a family from a master seed.
    pub fn new(master_seed: u64) -> Self {
        Self { master_seed }
    }

    /// The master seed.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// The `i`-th hasher of the family.
    pub fn hasher(&self, i: u64) -> SaltedHasher {
        // Two rounds of splitmix decorrelate consecutive indices thoroughly.
        SaltedHasher::new(splitmix64(splitmix64(
            self.master_seed ^ i.wrapping_mul(0xA24B_AED4_963E_E407),
        )))
    }

    /// Derive a sub-family, e.g. one family per Bloom attribute sketch.
    pub fn subfamily(&self, i: u64) -> HashFamily {
        HashFamily::new(self.hasher(i).seed() ^ 0x5851_F42D_4C95_7F2D)
    }
}

/// Well-known hash-function indices used throughout the CCF crates, so every component
/// draws its hasher from the same family without colliding with another component.
pub mod purpose {
    /// Key → primary bucket ℓ.
    pub const KEY_BUCKET: u64 = 0;
    /// Key → fingerprint κ.
    pub const KEY_FINGERPRINT: u64 = 1;
    /// Fingerprint κ → alternate-bucket offset h(κ) (partial-key cuckoo hashing).
    pub const PARTIAL_KEY: u64 = 2;
    /// (min(ℓ, ℓ′), κ) → next chain bucket (§6.2).
    pub const CHAIN: u64 = 3;
    /// Fingerprint κ → growth-bit stream for capacity doubling. When a filter grows,
    /// each doubling appends one index bit taken from this hash of the stored
    /// fingerprint, so entries can be migrated (and later queried) without the
    /// original keys.
    pub const GROWTH: u64 = 4;
    /// Key → shard index for the sharded service layer. Disjoint from every in-shard
    /// hash (bucket, fingerprint, partial-key, chain, growth) so that the routing of a
    /// key to a shard never correlates with its placement *inside* the shard: a shard
    /// receives a uniform slice of the keyspace, not a slice of any bucket range.
    pub const SHARD: u64 = 5;
    /// Typed key → canonical 64-bit key material (`FilterKey` lowering in `ccf-core`).
    /// String, byte and composite keys are hashed at this index before entering the
    /// u64 hot path; `u64` keys bypass it entirely (identity lowering), which is what
    /// keeps the u64 path bit-identical to a filter that never heard of typed keys.
    /// Disjoint from every other purpose so lowering never correlates with bucket
    /// choice, fingerprints, chains, growth bits or shard routing.
    pub const KEY_LOWER: u64 = 6;
    /// Base index for per-attribute-column fingerprint hashes; column `c` uses
    /// `ATTRIBUTE_BASE + c`.
    pub const ATTRIBUTE_BASE: u64 = 16;
    /// Base index for Bloom-attribute-sketch hash functions; hash `j` uses
    /// `BLOOM_BASE + j`.
    pub const BLOOM_BASE: u64 = 1024;

    /// Every purpose constant with its name — the ground truth the
    /// pairwise-distinctness test (and the `ccf-lint` CCF-L004 cross-check)
    /// iterates. **Keep in sync**: a constant added above must be added here,
    /// or the distinctness guarantee silently stops covering it.
    pub const ALL: &[(&str, u64)] = &[
        ("KEY_BUCKET", KEY_BUCKET),
        ("KEY_FINGERPRINT", KEY_FINGERPRINT),
        ("PARTIAL_KEY", PARTIAL_KEY),
        ("CHAIN", CHAIN),
        ("GROWTH", GROWTH),
        ("SHARD", SHARD),
        ("KEY_LOWER", KEY_LOWER),
        ("ATTRIBUTE_BASE", ATTRIBUTE_BASE),
        ("BLOOM_BASE", BLOOM_BASE),
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_is_deterministic() {
        let f1 = HashFamily::new(99);
        let f2 = HashFamily::new(99);
        for i in 0..20 {
            assert_eq!(f1.hasher(i), f2.hasher(i));
        }
    }

    #[test]
    fn family_members_are_distinct() {
        let f = HashFamily::new(7);
        let mut seeds = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(
                seeds.insert(f.hasher(i).seed()),
                "duplicate seed at index {i}"
            );
        }
    }

    #[test]
    fn different_master_seeds_give_different_hashers() {
        let a = HashFamily::new(1).hasher(0);
        let b = HashFamily::new(2).hasher(0);
        assert_ne!(a.hash_u64(42), b.hash_u64(42));
    }

    #[test]
    fn bucket_of_is_in_range_and_roughly_uniform() {
        let h = SaltedHasher::new(123);
        let m = 97; // non power of two
        let mut counts = vec![0u32; m];
        for v in 0..97_000u64 {
            let b = h.bucket_of(v, m);
            assert!(b < m);
            counts[b] += 1;
        }
        let expected = 97_000.0 / m as f64;
        for &c in &counts {
            assert!((c as f64) > expected * 0.8 && (c as f64) < expected * 1.2);
        }
    }

    #[test]
    fn hash_bytes_uses_lookup3() {
        let h = SaltedHasher::new(0);
        assert_eq!(
            h.hash_bytes(b"abc"),
            crate::lookup3::hashlittle2_u64(b"abc", 0)
        );
    }

    #[test]
    fn subfamily_differs_from_parent() {
        let f = HashFamily::new(5);
        let sub = f.subfamily(0);
        assert_ne!(f.hasher(0), sub.hasher(0));
        assert_ne!(f.master_seed(), sub.master_seed());
    }

    #[test]
    fn shard_purpose_is_disjoint_from_in_shard_hashes() {
        // Shard routing must not correlate with any in-shard hash purpose; at minimum
        // the purpose indices are distinct and the derived hashers disagree.
        let f = HashFamily::new(0xCCF);
        let shard = f.hasher(purpose::SHARD);
        for p in [
            purpose::KEY_BUCKET,
            purpose::KEY_FINGERPRINT,
            purpose::PARTIAL_KEY,
            purpose::CHAIN,
            purpose::GROWTH,
            purpose::KEY_LOWER,
        ] {
            assert_ne!(p, purpose::SHARD);
            assert_ne!(f.hasher(p).seed(), shard.seed());
        }
    }

    #[test]
    fn key_lower_purpose_is_disjoint_from_all_other_purposes() {
        let f = HashFamily::new(0xCCF);
        let lower = f.hasher(purpose::KEY_LOWER);
        for p in [
            purpose::KEY_BUCKET,
            purpose::KEY_FINGERPRINT,
            purpose::PARTIAL_KEY,
            purpose::CHAIN,
            purpose::GROWTH,
            purpose::SHARD,
            purpose::ATTRIBUTE_BASE,
            purpose::BLOOM_BASE,
        ] {
            assert_ne!(p, purpose::KEY_LOWER);
            assert_ne!(f.hasher(p).seed(), lower.seed());
        }
    }

    #[test]
    fn purpose_salts_are_pairwise_distinct() {
        // The ground truth behind ccf-lint's CCF-L004: two components sharing a
        // salt index would draw correlated hashers.
        for (i, (name_b, b)) in purpose::ALL.iter().enumerate() {
            for (name_a, a) in &purpose::ALL[..i] {
                assert_ne!(a, b, "purpose::{name_a} and purpose::{name_b} collide");
            }
        }
    }

    #[test]
    fn purpose_ranges_do_not_overlap_scalars() {
        // The base indices anchor open-ended ranges (ATTRIBUTE_BASE + c,
        // BLOOM_BASE + j); scalar purposes must sit below ATTRIBUTE_BASE and the
        // attribute range must not be able to reach BLOOM_BASE for realistic
        // column counts (< 1008 attribute columns).
        for (name, v) in purpose::ALL {
            if *v < purpose::ATTRIBUTE_BASE {
                continue; // scalar purpose, below the ranged region
            }
            assert!(
                *v == purpose::ATTRIBUTE_BASE || *v == purpose::BLOOM_BASE,
                "purpose::{name} = {v} sits inside a ranged region"
            );
        }
        let (attr_base, bloom_base) = (purpose::ATTRIBUTE_BASE, purpose::BLOOM_BASE);
        assert!(attr_base > purpose::KEY_LOWER && bloom_base > attr_base);
    }

    #[test]
    fn independence_between_family_members() {
        // Correlation check: members 0 and 1 should not agree on low bits more than
        // chance would allow.
        let f = HashFamily::new(2024);
        let (a, b) = (f.hasher(0), f.hasher(1));
        let mut agree = 0;
        for v in 0..10_000u64 {
            if a.hash_u64(v) & 0xFF == b.hash_u64(v) & 0xFF {
                agree += 1;
            }
        }
        assert!(
            agree < 100,
            "members look correlated: {agree}/10000 byte agreements"
        );
    }
}
