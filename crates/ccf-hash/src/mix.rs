//! 64-bit mixing / finalizer functions.
//!
//! The cuckoo-filter machinery mostly hashes small fixed-width integers (join keys,
//! attribute values, bucket indices). For those a full byte-stream hash is overkill; a
//! strong 64-bit finalizer gives the same statistical quality at a fraction of the
//! cost. The salted hasher family in [`crate::salted`] composes these with per-purpose
//! salts.

/// The splitmix64 mixer (Steele, Lea & Flood; used as the seed sequencer of
/// xoshiro/xoroshiro). A bijection on `u64` with excellent avalanche behaviour.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// MurmurHash3's 64-bit finalizer (`fmix64`). A bijection on `u64`.
#[inline]
pub fn fmix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^= x >> 33;
    x
}

/// Hash a `u64` value under a 64-bit seed.
///
/// This is the workhorse primitive used by [`crate::salted::SaltedHasher`]: mixing the
/// seed in through an xor-then-finalize construction gives hash functions that behave
/// independently for distinct seeds.
#[inline]
pub fn hash_u64(value: u64, seed: u64) -> u64 {
    fmix64(splitmix64(value ^ seed).wrapping_add(seed.rotate_left(32)))
}

/// Hash a pair of `u64` values under a seed. Used e.g. for the chaining hash
/// `h(min(ℓ, ℓ′), κ)` of §6.2, which takes a bucket index *and* a fingerprint.
#[inline]
pub fn hash_u64_pair(a: u64, b: u64, seed: u64) -> u64 {
    // Combine with distinct odd multipliers before finalizing so that (a, b) and
    // (b, a) map to unrelated values.
    let x = splitmix64(a ^ seed);
    let y = splitmix64(b.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed.rotate_left(17));
    fmix64(x ^ y.rotate_left(29))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn splitmix64_known_sequence() {
        // Reference values from the splitmix64 reference implementation seeded with 0:
        // successive outputs of the generator are splitmix64 applied to 1, 2, 3 ... of
        // the *state*, but the mixer itself is deterministic; check stability.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
    }

    #[test]
    fn fmix64_is_bijective_on_sample() {
        let mut seen = HashSet::new();
        for i in 0..100_000u64 {
            assert!(seen.insert(fmix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn fmix64_zero_maps_to_zero() {
        // fmix64 fixes 0; callers that need non-zero outputs must handle this.
        assert_eq!(fmix64(0), 0);
    }

    #[test]
    fn hash_u64_seed_independence() {
        // The same values hashed under two different seeds should look unrelated:
        // count collisions in the low 16 bits.
        let mut same = 0usize;
        for v in 0..10_000u64 {
            if hash_u64(v, 1) & 0xFFFF == hash_u64(v, 2) & 0xFFFF {
                same += 1;
            }
        }
        // Expected ~ 10000 / 65536 ≈ 0.15; allow generous slack.
        assert!(
            same < 30,
            "too many low-bit collisions across seeds: {same}"
        );
    }

    #[test]
    fn hash_u64_avalanche() {
        // Flipping one input bit should flip roughly half of the output bits.
        let mut total_flips = 0u32;
        let trials = 1000;
        for v in 0..trials {
            let h0 = hash_u64(v, 42);
            let h1 = hash_u64(v ^ 1, 42);
            total_flips += (h0 ^ h1).count_ones();
        }
        let avg = total_flips as f64 / trials as f64;
        assert!((24.0..40.0).contains(&avg), "poor avalanche: {avg} bits");
    }

    #[test]
    fn hash_pair_is_order_sensitive() {
        assert_ne!(hash_u64_pair(1, 2, 0), hash_u64_pair(2, 1, 0));
        assert_ne!(hash_u64_pair(5, 5, 1), hash_u64_pair(5, 5, 2));
    }

    #[test]
    fn hash_pair_uniform_low_bits() {
        // Bucket selection uses modulo on these hashes; make sure low bits are usable.
        let m = 64u64;
        let mut counts = vec![0u32; m as usize];
        for a in 0..200u64 {
            for b in 0..50u64 {
                counts[(hash_u64_pair(a, b, 7) % m) as usize] += 1;
            }
        }
        let expected = (200 * 50) as f64 / m as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > expected * 0.5 && (c as f64) < expected * 1.5,
                "bucket {i} count {c} far from expected {expected}"
            );
        }
    }
}
