//! Fingerprint derivation for keys (κ) and attributes (α).
//!
//! A cuckoo filter stores only a small fingerprint κ of each key (§4.2). The CCF
//! additionally stores a vector of attribute fingerprints α, one per attribute column
//! (§5.1). Both are just truncated hashes, with two paper-specific details:
//!
//! * **Key fingerprints must be non-zero** so that an all-zero entry can represent an
//!   empty slot (standard cuckoo-filter practice; the original implementation does the
//!   same).
//! * **Small-value optimisation** (§9): attribute values smaller than `2^|α|` can be
//!   stored exactly rather than hashed, which removes hash collisions entirely for
//!   low-cardinality columns such as `company_type_id` (cardinality 2) — the common
//!   case in the JOB-light workload.

use crate::salted::{purpose, HashFamily, SaltedHasher};

/// Derives key fingerprints κ and primary buckets ℓ from raw 64-bit keys.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprinter {
    bucket_hasher: SaltedHasher,
    fp_hasher: SaltedHasher,
    /// Fingerprint width |κ| in bits, between 1 and 16.
    fp_bits: u32,
}

impl Fingerprinter {
    /// Create a fingerprinter drawing its hash functions from `family`.
    ///
    /// # Panics
    /// Panics if `fp_bits` is not in `1..=16`.
    pub fn new(family: &HashFamily, fp_bits: u32) -> Self {
        assert!(
            (1..=16).contains(&fp_bits),
            "key fingerprint width must be 1..=16 bits, got {fp_bits}"
        );
        Self {
            bucket_hasher: family.hasher(purpose::KEY_BUCKET),
            fp_hasher: family.hasher(purpose::KEY_FINGERPRINT),
            fp_bits,
        }
    }

    /// Fingerprint width |κ| in bits.
    pub fn fp_bits(&self) -> u32 {
        self.fp_bits
    }

    /// Number of distinct fingerprint values (2^|κ| − 1, excluding the reserved 0).
    pub fn fp_cardinality(&self) -> u64 {
        (1u64 << self.fp_bits) - 1
    }

    /// Derive the non-zero fingerprint κ for `key`.
    #[inline]
    pub fn fingerprint(&self, key: u64) -> u16 {
        let h = self.fp_hasher.hash_u64(key);
        let mask = (1u64 << self.fp_bits) - 1;
        let fp = (h & mask) as u16;
        if fp == 0 {
            // Remap zero so it never collides with the empty-slot marker. Folding in
            // higher bits keeps the distribution nearly uniform over 1..=mask.
            let alt = ((h >> self.fp_bits) & mask) as u16;
            if alt == 0 {
                1
            } else {
                alt
            }
        } else {
            fp
        }
    }

    /// Derive the primary bucket ℓ = h(key) mod m.
    #[inline]
    pub fn primary_bucket(&self, key: u64, num_buckets: usize) -> usize {
        self.bucket_hasher.bucket_of(key, num_buckets)
    }

    /// Derive both (κ, ℓ) at once — the `(κ, ℓ) ← h(k)` step of Algorithm 1.
    #[inline]
    pub fn fingerprint_and_bucket(&self, key: u64, num_buckets: usize) -> (u16, usize) {
        (self.fingerprint(key), self.primary_bucket(key, num_buckets))
    }
}

/// Derives per-column attribute fingerprints α (§5.1) with the small-value
/// optimisation of §9.
#[derive(Debug, Clone)]
pub struct AttrFingerprinter {
    family: HashFamily,
    /// Attribute fingerprint width |α| per attribute, in bits (1..=16).
    attr_bits: u32,
    /// Whether values `< 2^attr_bits` are stored exactly instead of hashed.
    small_value_opt: bool,
}

impl AttrFingerprinter {
    /// Create an attribute fingerprinter.
    ///
    /// # Panics
    /// Panics if `attr_bits` is not in `1..=16`.
    pub fn new(family: &HashFamily, attr_bits: u32, small_value_opt: bool) -> Self {
        assert!(
            (1..=16).contains(&attr_bits),
            "attribute fingerprint width must be 1..=16 bits, got {attr_bits}"
        );
        Self {
            family: *family,
            attr_bits,
            small_value_opt,
        }
    }

    /// Attribute fingerprint width |α| in bits.
    pub fn attr_bits(&self) -> u32 {
        self.attr_bits
    }

    /// Whether the small-value optimisation is enabled.
    pub fn small_value_opt(&self) -> bool {
        self.small_value_opt
    }

    /// Fingerprint of attribute column `col` having value `value`.
    #[inline]
    pub fn fingerprint(&self, col: usize, value: u64) -> u16 {
        let mask = (1u64 << self.attr_bits) - 1;
        if self.small_value_opt && value <= mask {
            // §9 "Small values": represent small attribute values exactly.
            return value as u16;
        }
        let hasher = self.family.hasher(purpose::ATTRIBUTE_BASE + col as u64);
        (hasher.hash_u64(value) & mask) as u16
    }

    /// Fingerprint an entire attribute vector.
    pub fn fingerprint_vector(&self, values: &[u64]) -> Vec<u16> {
        values
            .iter()
            .enumerate()
            .map(|(col, &v)| self.fingerprint(col, v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family() -> HashFamily {
        HashFamily::new(0xC0FFEE)
    }

    #[test]
    fn fingerprints_are_nonzero_and_within_width() {
        for bits in [4u32, 7, 8, 12, 16] {
            let f = Fingerprinter::new(&family(), bits);
            for key in 0..20_000u64 {
                let fp = f.fingerprint(key);
                assert_ne!(fp, 0, "zero fingerprint at key {key}, bits {bits}");
                assert!(u32::from(fp) < (1 << bits), "fingerprint exceeds width");
            }
        }
    }

    #[test]
    #[should_panic(expected = "key fingerprint width")]
    fn zero_width_fingerprints_rejected() {
        let _ = Fingerprinter::new(&family(), 0);
    }

    #[test]
    #[should_panic(expected = "key fingerprint width")]
    fn oversized_fingerprints_rejected() {
        let _ = Fingerprinter::new(&family(), 17);
    }

    #[test]
    fn fingerprint_distribution_is_roughly_uniform() {
        let f = Fingerprinter::new(&family(), 8);
        let mut counts = vec![0u32; 256];
        for key in 0..255_000u64 {
            counts[f.fingerprint(key) as usize] += 1;
        }
        assert_eq!(counts[0], 0, "zero is reserved");
        let expected = 255_000.0 / 255.0;
        for (v, &c) in counts.iter().enumerate().skip(1) {
            assert!(
                (c as f64) > expected * 0.8 && (c as f64) < expected * 1.2,
                "value {v} count {c} far from {expected}"
            );
        }
    }

    #[test]
    fn primary_bucket_in_range() {
        let f = Fingerprinter::new(&family(), 8);
        for m in [1usize, 2, 3, 64, 1000] {
            for key in 0..1000u64 {
                assert!(f.primary_bucket(key, m) < m);
            }
        }
    }

    #[test]
    fn fingerprint_and_bucket_consistent_with_parts() {
        let f = Fingerprinter::new(&family(), 12);
        for key in 0..100u64 {
            let (fp, b) = f.fingerprint_and_bucket(key, 128);
            assert_eq!(fp, f.fingerprint(key));
            assert_eq!(b, f.primary_bucket(key, 128));
        }
    }

    #[test]
    fn small_value_optimisation_stores_exact_values() {
        let a = AttrFingerprinter::new(&family(), 4, true);
        // Values below 2^4 = 16 must round-trip exactly in every column.
        for col in 0..5 {
            for v in 0..16u64 {
                assert_eq!(a.fingerprint(col, v) as u64, v);
            }
        }
        // Large values are hashed into range.
        for v in [16u64, 100, 1 << 40] {
            assert!(a.fingerprint(0, v) < 16);
        }
    }

    #[test]
    fn small_value_optimisation_disabled_hashes_everything() {
        let a = AttrFingerprinter::new(&family(), 8, false);
        // With hashing, the identity mapping should not hold for all small values.
        let identical = (0..256u64)
            .filter(|&v| a.fingerprint(0, v) as u64 == v)
            .count();
        assert!(
            identical < 32,
            "too many identity mappings for a hash: {identical}"
        );
    }

    #[test]
    fn attribute_columns_use_independent_hashes() {
        let a = AttrFingerprinter::new(&family(), 8, false);
        let same = (0..5000u64)
            .filter(|&v| a.fingerprint(0, v) == a.fingerprint(1, v))
            .count();
        // Chance agreement is 1/256 ≈ 20 of 5000.
        assert!(same < 60, "columns look correlated: {same}");
    }

    #[test]
    fn fingerprint_vector_matches_per_column() {
        let a = AttrFingerprinter::new(&family(), 8, true);
        let values = vec![3u64, 123_456, 7, 999_999_999];
        let vector = a.fingerprint_vector(&values);
        assert_eq!(vector.len(), values.len());
        for (col, &v) in values.iter().enumerate() {
            assert_eq!(vector[col], a.fingerprint(col, v));
        }
    }
}
