//! Hashing substrate for conditional cuckoo filters.
//!
//! The paper (§10.8) uses Bob Jenkins' `lookup3` hash function, the same hash used by
//! the original cuckoo-filter paper (Fan et al., CoNEXT 2014). This crate provides:
//!
//! * [`lookup3`] — a faithful port of `lookup3.c` (`hashword`, `hashlittle`,
//!   `hashlittle2`).
//! * [`mix`] — 64-bit finalizers / mixers (splitmix64, Murmur3 fmix64) used wherever a
//!   fast, well-distributed word mix is sufficient.
//! * [`salted`] — a small family of salted hashers so that independent hash functions
//!   (key hash, fingerprint hash, attribute hash, chain hash, per-Bloom-filter hashes)
//!   can be derived from a single seed, matching the experimental setup of §10.1 where
//!   runs are repeated "using random salts for the hash functions".
//! * [`fingerprint`] — derivation of non-zero key fingerprints κ and attribute
//!   fingerprints α of a configurable bit width.
//!
//! Everything here is deterministic given a seed; the same seed reproduces the same
//! filter layout, which the experiment harness relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fingerprint;
pub mod lookup3;
pub mod mix;
pub mod salted;

pub use fingerprint::{AttrFingerprinter, Fingerprinter};
pub use lookup3::{hashlittle, hashlittle2, hashword};
pub use mix::{fmix64, hash_u64, splitmix64};
pub use salted::{HashFamily, SaltedHasher};
