//! Property-based tests for the Bloom filter substrate.

use ccf_bloom::{BitVec, BloomFilter, TinyBloom};
use ccf_hash::HashFamily;
use proptest::prelude::*;

proptest! {
    /// A Bloom filter never returns false for an inserted item, under any combination
    /// of sizes, hash counts and item sets.
    #[test]
    fn bloom_has_no_false_negatives(
        bits in 8usize..512,
        hashes in 1usize..6,
        seed in any::<u64>(),
        items in proptest::collection::vec(any::<u64>(), 1..200),
    ) {
        let mut f = BloomFilter::new(bits, hashes, &HashFamily::new(seed));
        for &x in &items {
            f.insert(x);
        }
        for &x in &items {
            prop_assert!(f.contains(x), "false negative for {x}");
        }
    }

    /// Tiny Bloom sketches never lose an inserted (column, value) pair.
    #[test]
    fn tiny_bloom_has_no_false_negatives(
        bits in 4usize..64,
        seed in any::<u64>(),
        rows in proptest::collection::vec(proptest::collection::vec(any::<u64>(), 1..4), 1..20),
    ) {
        let family = HashFamily::new(seed);
        let mut b = TinyBloom::new(bits, 2, &family);
        for row in &rows {
            b.insert_row(row);
        }
        for row in &rows {
            for (col, &v) in row.iter().enumerate() {
                prop_assert!(b.contains_pair(col, v));
            }
        }
    }

    /// Bit-vector byte serialization round-trips for arbitrary lengths and bit patterns.
    #[test]
    fn bitvec_roundtrips_through_bytes(
        len in 1usize..300,
        set_bits in proptest::collection::vec(any::<usize>(), 0..64),
    ) {
        let mut v = BitVec::new(len);
        for &b in &set_bits {
            v.set(b % len);
        }
        let restored = BitVec::from_bytes(&v.to_bytes(), len);
        prop_assert_eq!(v, restored);
    }

    /// Union behaves like set union of inserted items: anything in either filter is in
    /// the union.
    #[test]
    fn tiny_bloom_union_is_superset(
        seed in any::<u64>(),
        left in proptest::collection::vec(any::<u64>(), 1..20),
        right in proptest::collection::vec(any::<u64>(), 1..20),
    ) {
        let family = HashFamily::new(seed);
        let mut a = TinyBloom::new(64, 2, &family);
        let mut b = TinyBloom::new(64, 2, &family);
        for &x in &left {
            a.insert_pair(0, x);
        }
        for &x in &right {
            b.insert_pair(0, x);
        }
        a.union_with(&b);
        for &x in left.iter().chain(&right) {
            prop_assert!(a.contains_pair(0, x));
        }
    }
}
