//! A standard Bloom filter.
//!
//! Used in three places in the reproduction:
//!
//! * as the conventional pre-built join filter the related-work systems use (§2–3),
//!   giving the "Bloom filter" reference point for bits/item;
//! * as the reference implementation that [`crate::TinyBloom`] (the packed in-entry
//!   variant) is tested against;
//! * by the join substrate to build per-table key filters for baseline comparisons.

use ccf_hash::{HashFamily, SaltedHasher};

use crate::bitvec::BitVec;
use crate::params::{bloom_fpr, optimal_num_hashes};

/// A standard Bloom filter over `u64` items with `k` salted hash functions.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: BitVec,
    hashers: Vec<SaltedHasher>,
    items: usize,
}

impl BloomFilter {
    /// Create a Bloom filter with `num_bits` bits and `num_hashes` hash functions drawn
    /// from `family`.
    ///
    /// # Panics
    /// Panics if `num_bits == 0` or `num_hashes == 0`.
    pub fn new(num_bits: usize, num_hashes: usize, family: &HashFamily) -> Self {
        assert!(num_bits > 0, "Bloom filter needs at least one bit");
        assert!(
            num_hashes > 0,
            "Bloom filter needs at least one hash function"
        );
        let hashers = (0..num_hashes as u64)
            .map(|i| family.hasher(ccf_hash::salted::purpose::BLOOM_BASE + i))
            .collect();
        Self {
            bits: BitVec::new(num_bits),
            hashers,
            items: 0,
        }
    }

    /// Create a Bloom filter sized for `expected_items` items at the given target FPR
    /// using the standard `m = -n·ln(ρ)/ln²2` rule and the optimal hash count.
    pub fn with_capacity(expected_items: usize, target_fpr: f64, family: &HashFamily) -> Self {
        assert!(
            target_fpr > 0.0 && target_fpr < 1.0,
            "FPR must be in (0, 1)"
        );
        let n = expected_items.max(1) as f64;
        let bits = (-n * target_fpr.ln() / (std::f64::consts::LN_2 * std::f64::consts::LN_2)).ceil()
            as usize;
        let bits = bits.max(8);
        let k = optimal_num_hashes(bits, expected_items.max(1));
        Self::new(bits, k, family)
    }

    /// Number of bits in the filter.
    pub fn num_bits(&self) -> usize {
        self.bits.len()
    }

    /// Number of hash functions.
    pub fn num_hashes(&self) -> usize {
        self.hashers.len()
    }

    /// Number of items inserted so far (counting duplicates).
    pub fn items_inserted(&self) -> usize {
        self.items
    }

    /// Insert an item.
    pub fn insert(&mut self, item: u64) {
        let m = self.bits.len();
        for h in &self.hashers {
            let i = h.bucket_of(item, m);
            self.bits.set(i);
        }
        self.items += 1;
    }

    /// Query whether an item may be in the set. Never returns `false` for an item that
    /// was inserted.
    pub fn contains(&self, item: u64) -> bool {
        let m = self.bits.len();
        self.hashers
            .iter()
            .all(|h| self.bits.get(h.bucket_of(item, m)))
    }

    /// Expected FPR for the current number of inserted items, via the standard
    /// approximation.
    pub fn expected_fpr(&self) -> f64 {
        bloom_fpr(self.hashers.len(), self.bits.len(), self.items)
    }

    /// Fraction of bits set (1.0 means fully saturated: every query returns true).
    pub fn saturation(&self) -> f64 {
        self.bits.saturation()
    }

    /// Size of the filter's bit array in bits (the serialized size a database would
    /// store; hasher seeds are shared configuration, not per-filter state).
    pub fn size_bits(&self) -> usize {
        self.bits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family() -> HashFamily {
        HashFamily::new(42)
    }

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(4096, 4, &family());
        for i in 0..400u64 {
            f.insert(i * 7 + 1);
        }
        for i in 0..400u64 {
            assert!(f.contains(i * 7 + 1), "false negative for {}", i * 7 + 1);
        }
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::new(1024, 3, &family());
        let hits = (0..1000u64).filter(|&x| f.contains(x)).count();
        assert_eq!(hits, 0);
    }

    #[test]
    fn measured_fpr_tracks_expectation() {
        let mut f = BloomFilter::with_capacity(2000, 0.02, &family());
        for i in 0..2000u64 {
            f.insert(i);
        }
        let expected = f.expected_fpr();
        let trials = 50_000u64;
        let fp = (0..trials).filter(|&x| f.contains(x + 1_000_000)).count();
        let measured = fp as f64 / trials as f64;
        assert!(
            measured < expected * 2.5 + 0.005,
            "measured {measured} way above expected {expected}"
        );
        assert!(
            measured > expected * 0.2,
            "measured {measured} suspiciously below expected {expected}"
        );
    }

    #[test]
    fn with_capacity_hits_target_fpr_band() {
        for target in [0.01f64, 0.05] {
            let mut f = BloomFilter::with_capacity(5000, target, &family());
            for i in 0..5000u64 {
                f.insert(i);
            }
            let exp = f.expected_fpr();
            assert!(
                exp < target * 1.5,
                "expected fpr {exp} misses target {target}"
            );
        }
    }

    #[test]
    fn saturation_grows_with_insertions() {
        let mut f = BloomFilter::new(256, 2, &family());
        let s0 = f.saturation();
        for i in 0..50u64 {
            f.insert(i);
        }
        let s1 = f.saturation();
        for i in 50..500u64 {
            f.insert(i);
        }
        let s2 = f.saturation();
        assert!(s0 < s1 && s1 < s2);
        assert!(s2 <= 1.0);
    }

    #[test]
    fn duplicate_insertions_do_not_change_bits() {
        let mut f = BloomFilter::new(512, 3, &family());
        f.insert(99);
        let ones = f.bits.count_ones();
        f.insert(99);
        f.insert(99);
        assert_eq!(f.bits.count_ones(), ones);
        assert_eq!(f.items_inserted(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bits_rejected() {
        let _ = BloomFilter::new(0, 2, &family());
    }

    #[test]
    fn different_families_give_different_layouts() {
        let mut a = BloomFilter::new(128, 2, &HashFamily::new(1));
        let mut b = BloomFilter::new(128, 2, &HashFamily::new(2));
        for i in 0..10u64 {
            a.insert(i);
            b.insert(i);
        }
        assert_ne!(a.bits, b.bits);
    }
}
