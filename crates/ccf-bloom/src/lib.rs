//! Bloom filter substrate for conditional cuckoo filters.
//!
//! Two very different Bloom filters appear in the paper:
//!
//! * A conventional, standalone [`BloomFilter`] (§2, §3) — the classic approximate set
//!   membership structure that join filters in commercial systems use and that the
//!   paper compares against in terms of bits/item.
//! * A *tiny*, bit-budgeted [`TinyBloom`] that lives inside a CCF entry (Bloom
//!   attribute sketches, §5.2) or is packed across the `d` entries of a bucket pair by
//!   Bloom conversion (§6.1, Algorithm 3). These filters are a handful of bits to a few
//!   dozen bits, so the parameter formulas of §7 matter and saturation ("filled with
//!   ones too quickly", §8.1) is a real concern.
//!
//! [`params`] collects the textbook formulas used throughout the paper: optimal number
//! of hash functions, expected FPR (with the caveat of Bose et al. that the classic
//! approximation underestimates for small filters, §7.2), and bits/item comparisons.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitvec;
pub mod bloom;
pub mod params;
pub mod tiny;

pub use bitvec::BitVec;
pub use bloom::BloomFilter;
pub use params::{bloom_fpr, optimal_bits_per_item, optimal_num_hashes};
pub use tiny::TinyBloom;
