//! A compact, fixed-size bit vector.
//!
//! Backs both the standalone [`crate::BloomFilter`] and the packed
//! [`crate::TinyBloom`]. Size accounting (`len`, `count_ones`, `saturation`) is exposed
//! because the paper's size and FPR analyses (§7, §10.7) need exact bit counts rather
//! than word-aligned approximations.

/// A fixed-length vector of bits stored in 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Create a bit vector of `len` bits, all zero.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i` to 1.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clear bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Get bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of bits that are set (0.0 for an empty vector).
    pub fn saturation(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Heap bytes backing the bit storage (the word array; excludes the inline
    /// struct header).
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of_val(self.words.as_slice())
    }

    /// Reset all bits to zero.
    pub fn reset(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Bitwise OR another vector of the same length into this one.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn union_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bit vector length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Serialize the raw bits, little-endian within each u64 word, into exactly
    /// `ceil(len/8)` bytes. Used by Bloom conversion to pack a filter's bits across
    /// several CCF entries.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len.div_ceil(8)];
        for (i, byte) in out.iter_mut().enumerate() {
            let word = self.words[i / 8];
            *byte = ((word >> ((i % 8) * 8)) & 0xFF) as u8;
        }
        out
    }

    /// Reconstruct a bit vector of `len` bits from bytes produced by [`Self::to_bytes`].
    ///
    /// # Panics
    /// Panics if `bytes` is shorter than `ceil(len/8)`.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Self {
        assert!(
            bytes.len() >= len.div_ceil(8),
            "need {} bytes for {len} bits, got {}",
            len.div_ceil(8),
            bytes.len()
        );
        let mut v = BitVec::new(len);
        for i in 0..len {
            if (bytes[i / 8] >> (i % 8)) & 1 == 1 {
                v.set(i);
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut v = BitVec::new(130);
        assert_eq!(v.len(), 130);
        for i in (0..130).step_by(3) {
            v.set(i);
        }
        for i in 0..130 {
            assert_eq!(v.get(i), i % 3 == 0, "bit {i}");
        }
        v.clear(0);
        assert!(!v.get(0));
    }

    #[test]
    fn count_ones_and_saturation() {
        let mut v = BitVec::new(100);
        assert_eq!(v.count_ones(), 0);
        assert_eq!(v.saturation(), 0.0);
        for i in 0..25 {
            v.set(i);
        }
        assert_eq!(v.count_ones(), 25);
        assert!((v.saturation() - 0.25).abs() < 1e-12);
        v.reset();
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn zero_length_vector() {
        let v = BitVec::new(0);
        assert!(v.is_empty());
        assert_eq!(v.count_ones(), 0);
        assert_eq!(v.saturation(), 0.0);
        assert!(v.to_bytes().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        let mut v = BitVec::new(10);
        v.set(10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let v = BitVec::new(10);
        v.get(11);
    }

    #[test]
    fn union_with_merges_bits() {
        let mut a = BitVec::new(70);
        let mut b = BitVec::new(70);
        a.set(3);
        b.set(65);
        a.union_with(&b);
        assert!(a.get(3) && a.get(65));
        assert_eq!(a.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn union_with_length_mismatch_panics() {
        let mut a = BitVec::new(8);
        let b = BitVec::new(9);
        a.union_with(&b);
    }

    #[test]
    fn byte_roundtrip_preserves_bits() {
        let mut v = BitVec::new(37);
        for i in [0usize, 1, 7, 8, 13, 31, 32, 36] {
            v.set(i);
        }
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), 5);
        let v2 = BitVec::from_bytes(&bytes, 37);
        assert_eq!(v, v2);
    }

    #[test]
    fn byte_roundtrip_non_word_aligned_lengths() {
        for len in [1usize, 5, 8, 9, 63, 64, 65, 127, 128, 129] {
            let mut v = BitVec::new(len);
            for i in (0..len).step_by(7) {
                v.set(i);
            }
            let v2 = BitVec::from_bytes(&v.to_bytes(), len);
            assert_eq!(v, v2, "roundtrip failed for len {len}");
        }
    }
}
