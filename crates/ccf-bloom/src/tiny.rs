//! Bit-budgeted tiny Bloom filters for attribute sketches.
//!
//! The Bloom attribute sketch of §5.2 attaches a *very small* Bloom filter to each CCF
//! entry: every (attribute column, value) pair of the row is inserted, and a predicate
//! `A_i = v` matches the sketch if the pair `(i, v)` might be present. Bloom conversion
//! (§6.1) builds the same kind of filter but packs it into the bit budget freed by `d`
//! fingerprint-vector entries.
//!
//! [`TinyBloom`] therefore differs from [`crate::BloomFilter`] in two ways: items are
//! `(column, value)` pairs, and the filter knows how to serialize itself to/from an
//! exact number of bits so that Bloom conversion's packing (Algorithm 3) can split the
//! bits across bucket entries.

use ccf_hash::{HashFamily, SaltedHasher};

use crate::bitvec::BitVec;
use crate::params::bloom_fpr;

/// A tiny Bloom filter over (attribute column, value) pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct TinyBloom {
    bits: BitVec,
    hashers: Vec<SaltedHasher>,
    pairs_inserted: usize,
}

impl TinyBloom {
    /// Create an empty tiny Bloom filter with `num_bits` bits and `num_hashes` hash
    /// functions drawn from `family`.
    ///
    /// # Panics
    /// Panics if `num_bits == 0` or `num_hashes == 0`.
    pub fn new(num_bits: usize, num_hashes: usize, family: &HashFamily) -> Self {
        assert!(num_bits > 0, "tiny Bloom filter needs at least one bit");
        assert!(
            num_hashes > 0,
            "tiny Bloom filter needs at least one hash function"
        );
        let hashers = (0..num_hashes as u64)
            .map(|i| family.hasher(ccf_hash::salted::purpose::BLOOM_BASE + i))
            .collect();
        Self {
            bits: BitVec::new(num_bits),
            hashers,
            pairs_inserted: 0,
        }
    }

    /// Number of bits.
    pub fn num_bits(&self) -> usize {
        self.bits.len()
    }

    /// Number of hash functions.
    pub fn num_hashes(&self) -> usize {
        self.hashers.len()
    }

    /// Number of (column, value) pairs inserted (counting duplicates).
    pub fn pairs_inserted(&self) -> usize {
        self.pairs_inserted
    }

    /// Insert the pair (attribute column, value), per Algorithm 3's
    /// "Insert (j, α_j) into B".
    pub fn insert_pair(&mut self, column: usize, value: u64) {
        let m = self.bits.len();
        for h in &self.hashers {
            let i = h.bucket_of(Self::encode(column, value), m);
            self.bits.set(i);
        }
        self.pairs_inserted += 1;
    }

    /// Insert every (column, value) pair of an attribute vector.
    pub fn insert_row(&mut self, values: &[u64]) {
        for (col, &v) in values.iter().enumerate() {
            self.insert_pair(col, v);
        }
    }

    /// Query whether the pair (column, value) might have been inserted.
    pub fn contains_pair(&self, column: usize, value: u64) -> bool {
        let m = self.bits.len();
        let e = Self::encode(column, value);
        self.hashers
            .iter()
            .all(|h| self.bits.get(h.bucket_of(e, m)))
    }

    /// Merge another tiny Bloom filter (same size and hash count) into this one.
    /// Used when multiple rows that share a key are collapsed into one sketch.
    ///
    /// # Panics
    /// Panics if dimensions differ.
    pub fn union_with(&mut self, other: &TinyBloom) {
        assert_eq!(
            self.bits.len(),
            other.bits.len(),
            "bit-size mismatch in union"
        );
        assert_eq!(
            self.hashers.len(),
            other.hashers.len(),
            "hash-count mismatch in union"
        );
        self.bits.union_with(&other.bits);
        self.pairs_inserted += other.pairs_inserted;
    }

    /// Expected FPR for a single (column, value) probe given the number of distinct
    /// pairs inserted, via the standard approximation.
    pub fn expected_fpr(&self) -> f64 {
        bloom_fpr(self.hashers.len(), self.bits.len(), self.pairs_inserted)
    }

    /// Fraction of bits set.
    pub fn saturation(&self) -> f64 {
        self.bits.saturation()
    }

    /// Heap bytes owned by this sketch: the bit array plus the salted-hasher list.
    pub fn heap_bytes(&self) -> usize {
        self.bits.heap_bytes() + std::mem::size_of_val(self.hashers.as_slice())
    }

    /// Serialize the raw bits (for packing across CCF entries by Bloom conversion).
    pub fn to_bits(&self) -> BitVec {
        self.bits.clone()
    }

    /// Rebuild a filter from raw bits previously produced by [`Self::to_bits`], plus the
    /// hash configuration (which is shared filter configuration, not per-filter state).
    pub fn from_bits(
        bits: BitVec,
        num_hashes: usize,
        family: &HashFamily,
        pairs_inserted: usize,
    ) -> Self {
        assert!(
            num_hashes > 0,
            "tiny Bloom filter needs at least one hash function"
        );
        let hashers = (0..num_hashes as u64)
            .map(|i| family.hasher(ccf_hash::salted::purpose::BLOOM_BASE + i))
            .collect();
        Self {
            bits,
            hashers,
            pairs_inserted,
        }
    }

    /// Encode a (column, value) pair as a single u64 for hashing. Column lives in the
    /// high bits so that small values in different columns stay distinct.
    #[inline]
    fn encode(column: usize, value: u64) -> u64 {
        ((column as u64) << 48) ^ value.rotate_left(17) ^ 0x9E37_79B9_7F4A_7C15
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family() -> HashFamily {
        HashFamily::new(7)
    }

    #[test]
    fn inserted_pairs_are_found() {
        let mut b = TinyBloom::new(32, 2, &family());
        b.insert_pair(0, 5);
        b.insert_pair(1, 1_000_000);
        assert!(b.contains_pair(0, 5));
        assert!(b.contains_pair(1, 1_000_000));
    }

    #[test]
    fn insert_row_covers_all_columns() {
        let mut b = TinyBloom::new(64, 2, &family());
        let row = [4u64, 9, 1999];
        b.insert_row(&row);
        for (c, &v) in row.iter().enumerate() {
            assert!(b.contains_pair(c, v));
        }
        assert_eq!(b.pairs_inserted(), 3);
    }

    #[test]
    fn same_value_different_columns_are_distinct() {
        let mut b = TinyBloom::new(256, 3, &family());
        b.insert_pair(0, 42);
        // Column 1 with the same value should usually *not* match (it can by Bloom
        // chance, but with 256 bits and one inserted pair the probability is tiny).
        assert!(!b.contains_pair(1, 42));
    }

    #[test]
    fn co_occurrence_is_not_tracked() {
        // §5.2: a Bloom attribute sketch cannot represent which values co-occur.
        // Insert rows (a1, a2) and (a1', a2'); the cross predicate (a1, a2') matches.
        let mut b = TinyBloom::new(128, 2, &family());
        b.insert_row(&[1, 10]);
        b.insert_row(&[2, 20]);
        assert!(b.contains_pair(0, 1) && b.contains_pair(1, 20));
        // The "false positive guaranteed" case from the paper:
        assert!(
            b.contains_pair(0, 1) && b.contains_pair(1, 20),
            "cross-row match must hold"
        );
    }

    #[test]
    fn union_merges_contents() {
        let mut a = TinyBloom::new(64, 2, &family());
        let mut b = TinyBloom::new(64, 2, &family());
        a.insert_pair(0, 1);
        b.insert_pair(0, 2);
        a.union_with(&b);
        assert!(a.contains_pair(0, 1) && a.contains_pair(0, 2));
        assert_eq!(a.pairs_inserted(), 2);
    }

    #[test]
    #[should_panic(expected = "bit-size mismatch")]
    fn union_size_mismatch_panics() {
        let mut a = TinyBloom::new(64, 2, &family());
        let b = TinyBloom::new(32, 2, &family());
        a.union_with(&b);
    }

    #[test]
    fn bit_roundtrip_preserves_queries() {
        let mut b = TinyBloom::new(48, 3, &family());
        for v in 0..6u64 {
            b.insert_pair((v % 3) as usize, v * 31);
        }
        let rebuilt = TinyBloom::from_bits(b.to_bits(), 3, &family(), b.pairs_inserted());
        assert_eq!(b, rebuilt);
        for v in 0..6u64 {
            assert!(rebuilt.contains_pair((v % 3) as usize, v * 31));
        }
    }

    #[test]
    fn saturation_reaches_one_under_overload() {
        let mut b = TinyBloom::new(8, 2, &family());
        for v in 0..200u64 {
            b.insert_pair(0, v);
        }
        assert!(b.saturation() > 0.99);
        // Saturated filter matches everything — the failure mode §8.1 warns about when
        // too many hash functions / too many items are used.
        assert!(b.contains_pair(5, 123_456_789));
    }

    #[test]
    fn small_filters_have_high_fpr() {
        // Sanity-check the regime the paper operates in: a 4-8 bit sketch with a few
        // pairs has double-digit FPR.
        let mut b = TinyBloom::new(8, 2, &family());
        b.insert_row(&[1, 2]);
        assert!(b.expected_fpr() > 0.1);
    }
}
