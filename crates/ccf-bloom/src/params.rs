//! Bloom filter parameter formulas used throughout the paper.
//!
//! §7.2 uses the standard FPR approximation ρ ≈ (1 − exp(−hn/s))^h and notes (citing
//! Bose et al.) that it *underestimates* the FPR for small filters — exactly the regime
//! Bloom attribute sketches live in. §5.2 and §10 use the bits/item comparisons:
//! a Bloom filter needs ≈ 1.44·log2(1/ρ) bits per item, a fingerprint needs
//! log2(1/ρ), and an optimally sized cuckoo filter needs (log2(1/ρ) + 3)/β.

/// Optimal number of hash functions for a Bloom filter with `bits` bits expected to
/// hold `items` distinct items: `k = (bits / items) · ln 2`, rounded to the nearest
/// integer and clamped to at least 1.
///
/// Equation (2)/(3) of the paper uses exactly this with `items = (d + 1) · #α` for
/// Bloom conversion.
pub fn optimal_num_hashes(bits: usize, items: usize) -> usize {
    if items == 0 || bits == 0 {
        return 1;
    }
    let k = (bits as f64 / items as f64) * std::f64::consts::LN_2;
    (k.round() as usize).max(1)
}

/// Classic Bloom filter FPR approximation `ρ ≈ (1 − exp(−k·n/s))^k` for `k` hashes,
/// `n` inserted items and `s` bits.
///
/// For the very small filters used as attribute sketches this underestimates the true
/// FPR (Bose et al. 2008, cited in §7.2); [`bloom_fpr_exact_small`] gives the exact
/// expectation for small `s`.
pub fn bloom_fpr(num_hashes: usize, bits: usize, items: usize) -> f64 {
    if bits == 0 {
        return 1.0;
    }
    if items == 0 {
        return 0.0;
    }
    let k = num_hashes as f64;
    let n = items as f64;
    let s = bits as f64;
    (1.0 - (-k * n / s).exp()).powf(k)
}

/// Exact expected FPR of a Bloom filter with `s` bits, `k` hash functions and `n`
/// inserted items, assuming independent uniform hashes:
/// `E[(Z/s)^k]` where `Z` is the number of set bits. Computed via the distribution of
/// occupied bits (a balls-in-bins occupancy computation), feasible for the tiny
/// filters used inside CCF entries (`s` up to a few hundred bits).
pub fn bloom_fpr_exact_small(num_hashes: usize, bits: usize, items: usize) -> f64 {
    if bits == 0 {
        return 1.0;
    }
    if items == 0 {
        return 0.0;
    }
    let s = bits;
    let k = num_hashes;
    let throws = k * items;
    // p[z] = probability exactly z distinct bits are set after `throws` uniform throws.
    // Recurrence over throws: with z bits set, the next throw hits a new bit with
    // probability (s - z)/s.
    let mut p = vec![0.0f64; s + 1];
    p[0] = 1.0;
    for _ in 0..throws {
        let mut next = vec![0.0f64; s + 1];
        for z in 0..=s {
            if p[z] == 0.0 {
                continue;
            }
            let stay = z as f64 / s as f64;
            next[z] += p[z] * stay;
            if z < s {
                next[z + 1] += p[z] * (1.0 - stay);
            }
        }
        p = next;
    }
    // FPR for a query of k independent positions given z set bits is (z/s)^k.
    p.iter()
        .enumerate()
        .map(|(z, &pz)| pz * (z as f64 / s as f64).powi(k as i32))
        .sum()
}

/// Bits per item a Bloom filter needs for a target FPR: `1.44 · log2(1/ρ)` (§4.2).
pub fn optimal_bits_per_item(target_fpr: f64) -> f64 {
    assert!(
        target_fpr > 0.0 && target_fpr < 1.0,
        "FPR must be in (0, 1)"
    );
    (1.0 / std::f64::consts::LN_2) * (1.0 / target_fpr).log2()
}

/// Bits per item an optimally sized cuckoo filter needs for a target FPR and load
/// factor β, with `b = 4` entries per bucket: `(log2(1/ρ) + 3)/β` (§4.2).
pub fn cuckoo_bits_per_item(target_fpr: f64, load_factor: f64) -> f64 {
    assert!(
        target_fpr > 0.0 && target_fpr < 1.0,
        "FPR must be in (0, 1)"
    );
    assert!(
        load_factor > 0.0 && load_factor <= 1.0,
        "load factor must be in (0, 1]"
    );
    ((1.0 / target_fpr).log2() + 3.0) / load_factor
}

/// Bits per item of a cuckoo filter with the semi-sorting optimisation:
/// `(log2(1/ρ) + 2)/β` (§4.2).
pub fn semisorted_cuckoo_bits_per_item(target_fpr: f64, load_factor: f64) -> f64 {
    assert!(
        target_fpr > 0.0 && target_fpr < 1.0,
        "FPR must be in (0, 1)"
    );
    assert!(
        load_factor > 0.0 && load_factor <= 1.0,
        "load factor must be in (0, 1]"
    );
    ((1.0 / target_fpr).log2() + 2.0) / load_factor
}

/// Number of hash functions chosen by Bloom conversion (§6.1, eq. 2):
/// `|B| / ((d + 1) · #α) · ln 2`, where `|B|` is the bit budget of the converted
/// filter, `d` the duplicate cap, and `num_attrs` = #α the number of attribute columns.
pub fn conversion_num_hashes(bloom_bits: usize, d: usize, num_attrs: usize) -> usize {
    optimal_num_hashes(bloom_bits, (d + 1) * num_attrs.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_hashes_matches_ln2_rule() {
        // 10 bits/item → k ≈ 6.93 → 7
        assert_eq!(optimal_num_hashes(1000, 100), 7);
        // 8 bits/item → k ≈ 5.55 → 6
        assert_eq!(optimal_num_hashes(800, 100), 6);
        // Degenerate inputs fall back to 1.
        assert_eq!(optimal_num_hashes(0, 10), 1);
        assert_eq!(optimal_num_hashes(10, 0), 1);
        assert_eq!(optimal_num_hashes(1, 1000), 1);
    }

    #[test]
    fn fpr_formula_sanity() {
        // Classic configuration: 10 bits/item, k = 7 → FPR ≈ 0.8%-0.9%.
        let fpr = bloom_fpr(7, 10_000, 1000);
        assert!((0.006..0.012).contains(&fpr), "fpr = {fpr}");
        // Empty filter never errs; zero-bit filter always errs.
        assert_eq!(bloom_fpr(3, 100, 0), 0.0);
        assert_eq!(bloom_fpr(3, 0, 10), 1.0);
        // More items → higher FPR, monotonically.
        assert!(bloom_fpr(4, 100, 20) < bloom_fpr(4, 100, 40));
    }

    #[test]
    fn exact_small_fpr_upper_bounds_approximation() {
        // Bose et al.: the approximation underestimates the FPR; for small filters the
        // exact value must be at least as large.
        for (k, s, n) in [(2usize, 16usize, 4usize), (2, 24, 6), (3, 32, 5), (1, 8, 3)] {
            let approx = bloom_fpr(k, s, n);
            let exact = bloom_fpr_exact_small(k, s, n);
            assert!(
                exact >= approx - 1e-12,
                "exact {exact} < approx {approx} for k={k}, s={s}, n={n}"
            );
        }
    }

    #[test]
    fn exact_small_fpr_converges_to_approximation_for_larger_filters() {
        let approx = bloom_fpr(4, 256, 40);
        let exact = bloom_fpr_exact_small(4, 256, 40);
        assert!(
            (exact - approx).abs() / exact < 0.15,
            "approx {approx} vs exact {exact}"
        );
    }

    #[test]
    fn bits_per_item_comparisons_from_paper() {
        // §4.2: cuckoo beats Bloom when target FPR < 0.35% at β = 95% (b = 4), and the
        // semi-sorted variant extends this to FPR < 2.5%.
        let beta = 0.95;
        // At 0.3 %, cuckoo (without semisorting) should already be smaller.
        assert!(cuckoo_bits_per_item(0.003, beta) < optimal_bits_per_item(0.003));
        // At 1 %, plain cuckoo is larger but the semi-sorted variant is smaller.
        assert!(cuckoo_bits_per_item(0.01, beta) > optimal_bits_per_item(0.01));
        assert!(semisorted_cuckoo_bits_per_item(0.01, beta) < optimal_bits_per_item(0.01));
        // At 5 %, Bloom is smaller than both cuckoo variants.
        assert!(optimal_bits_per_item(0.05) < semisorted_cuckoo_bits_per_item(0.05, beta));
    }

    #[test]
    fn conversion_hash_count_follows_equation_2() {
        // |B| = 48 bits, d = 3, #α = 2 → k ≈ 48/(4·2)·ln2 ≈ 4.16 → 4.
        assert_eq!(conversion_num_hashes(48, 3, 2), 4);
        // Never zero.
        assert_eq!(conversion_num_hashes(4, 3, 4), 1);
    }

    #[test]
    #[should_panic(expected = "FPR must be in (0, 1)")]
    fn bits_per_item_rejects_invalid_fpr() {
        let _ = optimal_bits_per_item(0.0);
    }
}
