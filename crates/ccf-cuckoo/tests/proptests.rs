//! Property-based tests for the cuckoo filter and cuckoo hash table substrate.

use ccf_cuckoo::{CuckooFilter, CuckooFilterParams, CuckooHashTable, PackedBuckets};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

proptest! {
    /// Keys successfully inserted into a cuckoo filter are always found (no false
    /// negatives), regardless of seed and key set.
    #[test]
    fn cuckoo_filter_no_false_negatives(
        seed in any::<u64>(),
        keys in proptest::collection::hash_set(any::<u64>(), 1..500),
    ) {
        let mut f = CuckooFilter::new(CuckooFilterParams::for_capacity(keys.len() + 16, 12, seed));
        let mut inserted = Vec::new();
        for &k in &keys {
            if f.insert(k).is_ok() {
                inserted.push(k);
            }
        }
        for &k in &inserted {
            prop_assert!(f.contains(k), "false negative for {k}");
        }
    }

    /// Deleting an inserted key removes exactly one copy; remaining copies stay
    /// findable and the length bookkeeping is exact.
    #[test]
    fn cuckoo_filter_delete_bookkeeping(
        seed in any::<u64>(),
        keys in proptest::collection::vec(0u64..200, 1..300),
    ) {
        let mut f = CuckooFilter::new(CuckooFilterParams {
            num_buckets: 256,
            entries_per_bucket: 4,
            fingerprint_bits: 12,
            seed,
            auto_grow: false,
        });
        let mut copies: HashMap<u64, usize> = HashMap::new();
        for &k in &keys {
            if f.insert(k).is_ok() {
                *copies.entry(k).or_default() += 1;
            }
        }
        let total: usize = copies.values().sum();
        prop_assert_eq!(f.len(), total);
        // Delete one copy of each distinct key that has one.
        for (&k, &n) in &copies {
            prop_assert!(f.delete(k));
            if n > 1 {
                prop_assert!(f.contains(k), "other copies of {k} must remain");
            }
        }
        prop_assert_eq!(f.len(), total - copies.len());
    }

    /// The cuckoo hash table behaves like a HashMap under inserts, updates, removals
    /// and lookups.
    #[test]
    fn cuckoo_table_matches_hashmap(
        seed in any::<u64>(),
        ops in proptest::collection::vec((0u8..3, 0u64..100, any::<u32>()), 1..400),
    ) {
        let mut table: CuckooHashTable<u32> = CuckooHashTable::new(4, 4, seed);
        let mut model: HashMap<u64, u32> = HashMap::new();
        for (op, key, value) in ops {
            match op {
                0 => {
                    let expected = model.insert(key, value);
                    let got = table.insert(key, value);
                    prop_assert_eq!(got, expected);
                }
                1 => {
                    let expected = model.remove(&key);
                    let got = table.remove(key);
                    prop_assert_eq!(got, expected);
                }
                _ => {
                    prop_assert_eq!(table.get(key), model.get(&key));
                }
            }
        }
        prop_assert_eq!(table.len(), model.len());
        for (&k, v) in &model {
            prop_assert_eq!(table.get(k), Some(v));
        }
    }

    /// Semi-sorting encode/decode round-trips the sorted 4-bit prefixes of any bucket.
    #[test]
    fn semisort_roundtrips(fingerprints in proptest::collection::vec(any::<u16>(), 1..8)) {
        let (rank, sorted) = ccf_cuckoo::semisort::encode_prefixes(&fingerprints);
        let decoded = ccf_cuckoo::semisort::decode_prefixes(rank, fingerprints.len());
        prop_assert_eq!(sorted, decoded);
    }

    /// Growth never loses a stored key, and batch queries agree with the per-key path
    /// at every growth level.
    #[test]
    fn growth_preserves_membership_and_batch_agrees(
        seed in any::<u64>(),
        keys in proptest::collection::hash_set(any::<u64>(), 1..300),
        doublings in 0u32..3,
    ) {
        let mut f = CuckooFilter::new(CuckooFilterParams {
            num_buckets: 128,
            entries_per_bucket: 4,
            fingerprint_bits: 12,
            seed,
            auto_grow: true,
        });
        for &k in &keys {
            prop_assert!(f.insert(k).is_ok(), "auto-grow insert of {} failed", k);
        }
        for _ in 0..doublings {
            f.grow();
        }
        let probe: Vec<u64> = keys.iter().copied().chain(0..100).collect();
        let batch = f.contains_batch(&probe);
        for (i, &k) in probe.iter().enumerate() {
            prop_assert_eq!(batch[i], f.contains(k), "batch mismatch for {}", k);
        }
        for &k in &keys {
            prop_assert!(f.contains(k), "false negative for {} after growth", k);
        }
    }

    /// The packed store's maintained occupancy counters never drift from a recount of
    /// the raw words, under arbitrary interleavings of inserts, removes, takes, swaps
    /// and growth — for bucket widths that pack exactly into words and widths with
    /// padding lanes alike.
    #[test]
    fn packed_counters_never_drift_from_recount(
        entries_per_bucket in 1usize..9,
        ops in proptest::collection::vec((0u8..5, any::<u16>(), any::<u16>()), 1..400),
    ) {
        let mut p = PackedBuckets::new(8, entries_per_bucket);
        for (op, a, b) in ops {
            let bucket = usize::from(a) % p.num_buckets();
            let fp = (b | 1).max(1); // never 0: κ = 0 is the empty-slot marker
            match op {
                0 => {
                    p.try_insert(bucket, fp);
                }
                1 => {
                    p.remove_one(bucket, fp);
                }
                2 => {
                    p.take(bucket, usize::from(b) % entries_per_bucket);
                }
                3 => {
                    p.swap(bucket, usize::from(b) % entries_per_bucket, fp);
                }
                _ => {
                    if p.num_buckets() < 64 {
                        p.extend_buckets(p.num_buckets());
                    }
                }
            }
            let (total, per_bucket) = p.recount();
            prop_assert_eq!(total, p.occupied(), "total counter drifted");
            for (bkt, &n) in per_bucket.iter().enumerate() {
                prop_assert_eq!(n, p.bucket_len(bkt), "bucket {} counter drifted", bkt);
                prop_assert_eq!(
                    n == entries_per_bucket,
                    p.is_full(bkt),
                    "is_full disagrees with recount for bucket {}", bkt
                );
            }
        }
    }

    /// The filter's O(1) len() (the store's total counter) always equals a recount of
    /// its packed words under random insert/delete/grow churn.
    #[test]
    fn filter_len_never_drifts_from_recount(
        seed in any::<u64>(),
        ops in proptest::collection::vec((0u8..8, 0u64..300), 1..300),
    ) {
        let mut f = CuckooFilter::new(CuckooFilterParams {
            num_buckets: 64,
            entries_per_bucket: 4,
            fingerprint_bits: 12,
            seed,
            auto_grow: false,
        });
        for (op, key) in ops {
            match op {
                0..=4 => {
                    let _ = f.insert(key);
                }
                5 | 6 => {
                    f.delete(key);
                }
                _ => {
                    if f.num_buckets() < 512 {
                        f.grow();
                    }
                }
            }
            let (total, _) = f.store().recount();
            prop_assert_eq!(total, f.len(), "len drifted from a recount of the words");
        }
    }

    /// The filter's count() for a key never exceeds 2b and matches the number of
    /// successful inserts for well-separated keys.
    #[test]
    fn duplicate_counts_are_capped(seed in any::<u64>(), copies in 1usize..20) {
        let mut f = CuckooFilter::new(CuckooFilterParams {
            num_buckets: 64,
            entries_per_bucket: 4,
            fingerprint_bits: 12,
            seed,
            auto_grow: false,
        });
        let mut ok = 0usize;
        for _ in 0..copies {
            if f.insert(42).is_ok() {
                ok += 1;
            }
        }
        prop_assert!(f.count(42) <= 8);
        prop_assert_eq!(f.count(42), ok);
    }
}

#[test]
fn distinct_key_sets_do_not_interfere() {
    // Deterministic cross-check: two disjoint key sets inserted into the same filter
    // remain individually queryable.
    let mut f = CuckooFilter::new(CuckooFilterParams::for_capacity(2000, 12, 7));
    let a: HashSet<u64> = (0..1000).collect();
    let b: HashSet<u64> = (10_000..11_000).collect();
    for &k in a.iter().chain(&b) {
        f.insert(k).unwrap();
    }
    for &k in a.iter().chain(&b) {
        assert!(f.contains(k));
    }
}
