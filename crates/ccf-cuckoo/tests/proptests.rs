//! Property-based tests for the cuckoo filter and cuckoo hash table substrate.

use ccf_cuckoo::semisort::{decode_prefixes, encode_prefixes, multiset_count};
use ccf_cuckoo::{
    BucketStore, CuckooFilter, CuckooFilterParams, CuckooHashTable, PackedBuckets, SemisortBuckets,
};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

proptest! {
    /// Keys successfully inserted into a cuckoo filter are always found (no false
    /// negatives), regardless of seed and key set.
    #[test]
    fn cuckoo_filter_no_false_negatives(
        seed in any::<u64>(),
        keys in proptest::collection::hash_set(any::<u64>(), 1..500),
    ) {
        let mut f = CuckooFilter::new(CuckooFilterParams::for_capacity(keys.len() + 16, 12, seed));
        let mut inserted = Vec::new();
        for &k in &keys {
            if f.insert(k).is_ok() {
                inserted.push(k);
            }
        }
        for &k in &inserted {
            prop_assert!(f.contains(k), "false negative for {k}");
        }
    }

    /// Deleting an inserted key removes exactly one copy; remaining copies stay
    /// findable and the length bookkeeping is exact.
    #[test]
    fn cuckoo_filter_delete_bookkeeping(
        seed in any::<u64>(),
        keys in proptest::collection::vec(0u64..200, 1..300),
    ) {
        let mut f = CuckooFilter::new(CuckooFilterParams {
            num_buckets: 256,
            seed,
            ..Default::default()
        });
        let mut copies: HashMap<u64, usize> = HashMap::new();
        for &k in &keys {
            if f.insert(k).is_ok() {
                *copies.entry(k).or_default() += 1;
            }
        }
        let total: usize = copies.values().sum();
        prop_assert_eq!(f.len(), total);
        // Delete one copy of each distinct key that has one.
        for (&k, &n) in &copies {
            prop_assert!(f.delete(k));
            if n > 1 {
                prop_assert!(f.contains(k), "other copies of {k} must remain");
            }
        }
        prop_assert_eq!(f.len(), total - copies.len());
    }

    /// The cuckoo hash table behaves like a HashMap under inserts, updates, removals
    /// and lookups.
    #[test]
    fn cuckoo_table_matches_hashmap(
        seed in any::<u64>(),
        ops in proptest::collection::vec((0u8..3, 0u64..100, any::<u32>()), 1..400),
    ) {
        let mut table: CuckooHashTable<u32> = CuckooHashTable::new(4, 4, seed);
        let mut model: HashMap<u64, u32> = HashMap::new();
        for (op, key, value) in ops {
            match op {
                0 => {
                    let expected = model.insert(key, value);
                    let got = table.insert(key, value);
                    prop_assert_eq!(got, expected);
                }
                1 => {
                    let expected = model.remove(&key);
                    let got = table.remove(key);
                    prop_assert_eq!(got, expected);
                }
                _ => {
                    prop_assert_eq!(table.get(key), model.get(&key));
                }
            }
        }
        prop_assert_eq!(table.len(), model.len());
        for (&k, v) in &model {
            prop_assert_eq!(table.get(k), Some(v));
        }
    }

    /// Semi-sorting encode/decode round-trips the sorted 4-bit prefixes of any bucket.
    #[test]
    fn semisort_roundtrips(fingerprints in proptest::collection::vec(any::<u16>(), 1..8)) {
        let (rank, sorted) = encode_prefixes(&fingerprints);
        let decoded = decode_prefixes(rank, fingerprints.len());
        prop_assert_eq!(sorted, decoded);
    }

    /// `SemisortBuckets` never drifts from a `PackedBuckets` shadow under arbitrary
    /// insert / remove / take / swap / extend churn. The backends arrange slots
    /// differently (packed preserves them, semisort re-canonicalizes), so the shadow
    /// mirrors mutations *by value* and the invariant compared is the per-bucket
    /// fingerprint multiset plus all maintained counters.
    #[test]
    fn semisort_never_drifts_from_a_packed_shadow(
        entries_per_bucket in 1usize..9,
        ops in proptest::collection::vec((0u8..5, any::<u16>(), any::<u16>()), 1..300),
    ) {
        let mut semi = SemisortBuckets::new(4, entries_per_bucket);
        let mut packed = PackedBuckets::new(4, entries_per_bucket);
        for (op, a, b) in ops {
            let bucket = usize::from(a) % semi.num_buckets();
            let fp = b.max(1); // never 0: κ = 0 is the empty-slot marker
            match op {
                0 => {
                    prop_assert_eq!(
                        semi.try_insert(bucket, fp),
                        packed.try_insert(bucket, fp),
                        "insert outcomes diverged"
                    );
                }
                1 => {
                    prop_assert_eq!(
                        semi.remove_one(bucket, fp),
                        packed.remove_one(bucket, fp),
                        "remove outcomes diverged"
                    );
                }
                2 => {
                    // Take whatever semisort holds at this slot; the packed shadow
                    // removes the same value (its slot arrangement differs).
                    let slot = usize::from(b) % entries_per_bucket;
                    let taken = semi.take(bucket, slot);
                    if taken != 0 {
                        prop_assert!(packed.remove_one(bucket, taken));
                    }
                }
                3 => {
                    let slot = usize::from(b) % entries_per_bucket;
                    let victim = semi.swap(bucket, slot, fp);
                    if victim != 0 {
                        prop_assert!(packed.remove_one(bucket, victim));
                    }
                    prop_assert!(packed.try_insert(bucket, fp));
                }
                _ => {
                    if semi.num_buckets() < 32 {
                        semi.extend_buckets(semi.num_buckets());
                        packed.extend_buckets(packed.num_buckets());
                    }
                }
            }
            prop_assert_eq!(semi.occupied(), packed.occupied(), "total counters diverged");
            prop_assert_eq!(semi.counts(), packed.counts(), "per-bucket counters diverged");
            let (semi_total, semi_per_bucket) = semi.recount();
            prop_assert_eq!(semi_total, semi.occupied(), "semisort counters drifted");
            prop_assert_eq!(&semi_per_bucket, &packed.recount().1);
            for bkt in 0..semi.num_buckets() {
                let mut s: Vec<u16> =
                    semi.bucket_slots(bkt).into_iter().filter(|&x| x != 0).collect();
                let mut p: Vec<u16> =
                    packed.bucket_slots(bkt).into_iter().filter(|&x| x != 0).collect();
                s.sort_unstable();
                p.sort_unstable();
                prop_assert_eq!(s, p, "bucket {} multisets diverged", bkt);
            }
            // Spot-check the probe kernels agree on the touched fingerprint.
            for bkt in 0..semi.num_buckets() {
                prop_assert_eq!(semi.contains(bkt, fp), packed.contains(bkt, fp));
            }
        }
    }

    /// Growth never loses a stored key, and batch queries agree with the per-key path
    /// at every growth level.
    #[test]
    fn growth_preserves_membership_and_batch_agrees(
        seed in any::<u64>(),
        keys in proptest::collection::hash_set(any::<u64>(), 1..300),
        doublings in 0u32..3,
    ) {
        let mut f = CuckooFilter::new(CuckooFilterParams {
            num_buckets: 128,
            seed,
            auto_grow: true,
            ..Default::default()
        });
        for &k in &keys {
            prop_assert!(f.insert(k).is_ok(), "auto-grow insert of {} failed", k);
        }
        for _ in 0..doublings {
            f.grow();
        }
        let probe: Vec<u64> = keys.iter().copied().chain(0..100).collect();
        let batch = f.contains_batch(&probe);
        for (i, &k) in probe.iter().enumerate() {
            prop_assert_eq!(batch[i], f.contains(k), "batch mismatch for {}", k);
        }
        for &k in &keys {
            prop_assert!(f.contains(k), "false negative for {} after growth", k);
        }
    }

    /// The packed store's maintained occupancy counters never drift from a recount of
    /// the raw words, under arbitrary interleavings of inserts, removes, takes, swaps
    /// and growth — for bucket widths that pack exactly into words and widths with
    /// padding lanes alike.
    #[test]
    fn packed_counters_never_drift_from_recount(
        entries_per_bucket in 1usize..9,
        ops in proptest::collection::vec((0u8..5, any::<u16>(), any::<u16>()), 1..400),
    ) {
        let mut p = PackedBuckets::new(8, entries_per_bucket);
        for (op, a, b) in ops {
            let bucket = usize::from(a) % p.num_buckets();
            let fp = (b | 1).max(1); // never 0: κ = 0 is the empty-slot marker
            match op {
                0 => {
                    p.try_insert(bucket, fp);
                }
                1 => {
                    p.remove_one(bucket, fp);
                }
                2 => {
                    p.take(bucket, usize::from(b) % entries_per_bucket);
                }
                3 => {
                    p.swap(bucket, usize::from(b) % entries_per_bucket, fp);
                }
                _ => {
                    if p.num_buckets() < 64 {
                        p.extend_buckets(p.num_buckets());
                    }
                }
            }
            let (total, per_bucket) = p.recount();
            prop_assert_eq!(total, p.occupied(), "total counter drifted");
            for (bkt, &n) in per_bucket.iter().enumerate() {
                prop_assert_eq!(n, p.bucket_len(bkt), "bucket {} counter drifted", bkt);
                prop_assert_eq!(
                    n == entries_per_bucket,
                    p.is_full(bkt),
                    "is_full disagrees with recount for bucket {}", bkt
                );
            }
        }
    }

    /// The filter's O(1) len() (the store's total counter) always equals a recount of
    /// its packed words under random insert/delete/grow churn.
    #[test]
    fn filter_len_never_drifts_from_recount(
        seed in any::<u64>(),
        ops in proptest::collection::vec((0u8..8, 0u64..300), 1..300),
    ) {
        let mut f = CuckooFilter::new(CuckooFilterParams {
            num_buckets: 64,
            seed,
            ..Default::default()
        });
        for (op, key) in ops {
            match op {
                0..=4 => {
                    let _ = f.insert(key);
                }
                5 | 6 => {
                    f.delete(key);
                }
                _ => {
                    if f.num_buckets() < 512 {
                        f.grow();
                    }
                }
            }
            let (total, _) = f.store().recount();
            prop_assert_eq!(total, f.len(), "len drifted from a recount of the words");
        }
    }

    /// The filter's count() for a key never exceeds 2b and matches the number of
    /// successful inserts for well-separated keys.
    #[test]
    fn duplicate_counts_are_capped(seed in any::<u64>(), copies in 1usize..20) {
        let mut f = CuckooFilter::new(CuckooFilterParams {
            num_buckets: 64,
            seed,
            ..Default::default()
        });
        let mut ok = 0usize;
        for _ in 0..copies {
            if f.insert(42).is_ok() {
                ok += 1;
            }
        }
        prop_assert!(f.count(42) <= 8);
        prop_assert_eq!(f.count(42), ok);
    }
}

/// The encode/decode pair round-trips **every** multiset rank for the bucket widths
/// the ISSUE calls out (b ∈ {2, 4, 8}). Multisets are enumerated with the cheap
/// lexicographic successor rather than per-rank decoding alone, so the sweep also
/// pins the enumeration order the precomputed codec tables rely on.
#[test]
fn semisort_roundtrips_every_rank_for_paper_bucket_widths() {
    for b in [2usize, 4, 8] {
        let rank_count = multiset_count(16, b);
        let mut cur = vec![0u16; b];
        for rank in 0..rank_count {
            let (encoded, sorted) = encode_prefixes(&cur);
            assert_eq!(
                encoded, rank,
                "b={b}: enumeration order disagrees with rank"
            );
            assert_eq!(sorted, cur, "b={b}: canonical form changed under encode");
            assert_eq!(decode_prefixes(rank, b), cur, "b={b} rank={rank}");
            // Lexicographic successor: bump the last position below 15 and copy the
            // new value into every later position.
            if let Some(bump) = cur.iter().rposition(|&v| v < 15) {
                cur[bump] += 1;
                let v = cur[bump];
                cur[bump + 1..].fill(v);
            } else {
                assert_eq!(rank, rank_count - 1, "b={b}: enumeration ended early");
            }
        }
    }
}

#[test]
fn distinct_key_sets_do_not_interfere() {
    // Deterministic cross-check: two disjoint key sets inserted into the same filter
    // remain individually queryable.
    let mut f = CuckooFilter::new(CuckooFilterParams::for_capacity(2000, 12, 7));
    let a: HashSet<u64> = (0..1000).collect();
    let b: HashSet<u64> = (10_000..11_000).collect();
    for &k in a.iter().chain(&b) {
        f.insert(k).unwrap();
    }
    for &k in a.iter().chain(&b) {
        assert!(f.contains(k));
    }
}
