//! Overhead guard for the telemetry layer: a filter carrying *disabled* instruments
//! (the default, and what re-attaching `Telemetry::disabled()` restores) must answer
//! batched `contains` probes within 2% of an identically built filter that was never
//! attached. The batched contains path is the hottest probe kernel in the workspace,
//! so this is the contract that lets telemetry stay compiled-in unconditionally.

use std::time::Instant;

use ccf_cuckoo::{CuckooFilter, CuckooFilterParams};
use ccf_telemetry::Telemetry;

const KEYS: u64 = 1 << 15;
const PROBES: usize = 1 << 15;
const TRIALS: usize = 12;

fn build_filter(seed: u64) -> CuckooFilter {
    let mut f = CuckooFilter::new(CuckooFilterParams {
        num_buckets: 1 << 14,
        seed,
        ..Default::default()
    });
    for k in 0..KEYS {
        // A splitmix-style spread so the probe set mixes hits and misses.
        f.insert(k.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .expect("load stays under capacity");
    }
    f
}

fn probe_keys() -> Vec<u64> {
    // Half the probes hit inserted keys, half miss.
    (0..PROBES as u64)
        .map(|i| (i * 2).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect()
}

fn min_batch_secs(filter: &CuckooFilter, keys: &[u64]) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let start = Instant::now();
        let hits = filter.contains_batch(keys);
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(hits.len(), keys.len());
        best = best.min(secs);
    }
    best
}

/// The guard proper. Gated on machine parallelism like the sharded speedup asserts:
/// on a loaded single-core CI box wall-clock ratios are noise, not signal.
#[test]
fn disabled_telemetry_adds_under_two_percent_to_batched_contains() {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cpus < 4 {
        eprintln!("overhead guard skipped: needs >= 4 cpus for stable timing (have {cpus})");
        return;
    }

    let baseline = build_filter(0xC0FFEE);
    let mut attached = build_filter(0xC0FFEE);
    // Exercise the full attach/detach cycle: resolve against a live registry, then
    // swap back to the disabled bundle the hot path must treat as free.
    attached.attach_telemetry(&Telemetry::enabled(), &[("structure", "guard")]);
    attached.attach_telemetry(&Telemetry::disabled(), &[("structure", "guard")]);
    assert!(!attached.instruments().inserts.is_enabled());

    let keys = probe_keys();
    // Same geometry, same seed, same contents: answers must agree exactly.
    assert_eq!(
        baseline.contains_batch(&keys),
        attached.contains_batch(&keys)
    );

    // Warm both paths, then interleave timed trials so thermal/scheduler drift hits
    // both filters equally; min-of-trials discards preemption outliers.
    let _ = min_batch_secs(&baseline, &keys);
    let _ = min_batch_secs(&attached, &keys);
    let baseline_secs = min_batch_secs(&baseline, &keys);
    let attached_secs = min_batch_secs(&attached, &keys);

    let ratio = attached_secs / baseline_secs;
    assert!(
        ratio <= 1.02,
        "disabled telemetry must add < 2% to batched contains: \
         {:.1}ns vs {:.1}ns per probe ({:.3}x)",
        attached_secs * 1e9 / PROBES as f64,
        baseline_secs * 1e9 / PROBES as f64,
        ratio
    );
}

/// The structural reason the guard holds: the batched contains path records no
/// instrument at all, even when telemetry is enabled. Membership probes are counted
/// where the semantics live (`ccf-core` predicate queries, `ccf-shard` batch
/// histograms, `ccf-join` probe counters), never per-fingerprint down here.
#[test]
fn batched_contains_records_nothing_even_when_enabled() {
    let telemetry = Telemetry::enabled();
    let mut f = build_filter(7);
    f.attach_telemetry(&telemetry, &[("structure", "guard")]);
    let before = telemetry.snapshot();
    let keys = probe_keys();
    let _ = f.contains_batch(&keys);
    let _ = f.contains(42);
    let after = telemetry.snapshot();
    let diff = after.diff(&before);
    assert_eq!(
        diff.counter_sum("cuckoo_inserts_total"),
        0,
        "contains must not move any counter"
    );
    assert_eq!(after.render_text(), before.render_text());
}
