//! A standard partial-key cuckoo filter (§4.2), with the multiset insertion behaviour
//! of §4.3.
//!
//! The filter stores only a small fingerprint κ of each key. An item hashes to a
//! primary bucket ℓ; the alternate bucket is ℓ′ = ℓ ⊕ h(κ), computable from the stored
//! fingerprint alone, which is what allows kicked entries to be relocated without the
//! original key. Insertion kicks random victims for up to [`MAX_KICKS`] rounds before
//! reporting failure.
//!
//! Duplicate keys *can* be inserted (each inserts another copy of κ), but a bucket pair
//! holds at most `2b` entries, so heavy duplication quickly causes insertion failures —
//! the behaviour quantified in Figure 4 and the motivation for the CCF's chaining.

use ccf_hash::{Fingerprinter, HashFamily, SaltedHasher};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bucket::Bucket;
use crate::metrics::OccupancyStats;

/// Maximum number of kick (evict-and-reinsert) rounds before an insertion fails,
/// matching the constant used by the original cuckoo-filter implementation.
pub const MAX_KICKS: usize = 500;

/// Configuration for a [`CuckooFilter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CuckooFilterParams {
    /// Number of buckets `m`. Rounded up to a power of two so the ℓ ⊕ h(κ) partial-key
    /// mapping stays within range and is an involution.
    pub num_buckets: usize,
    /// Entries per bucket `b` (the paper uses 4 as the typical setting).
    pub entries_per_bucket: usize,
    /// Key fingerprint width |κ| in bits (1..=16).
    pub fingerprint_bits: u32,
    /// Seed for the hash family (varying it reproduces the paper's random-salt runs).
    pub seed: u64,
}

impl Default for CuckooFilterParams {
    fn default() -> Self {
        Self {
            num_buckets: 1 << 16,
            entries_per_bucket: 4,
            fingerprint_bits: 12,
            seed: 0,
        }
    }
}

impl CuckooFilterParams {
    /// Parameters sized to hold `capacity` items at roughly 95 % load factor with
    /// `b = 4` (the optimally-sized configuration of §4.2).
    pub fn for_capacity(capacity: usize, fingerprint_bits: u32, seed: u64) -> Self {
        let entries_per_bucket = 4;
        let needed = (capacity as f64 / 0.95).ceil() as usize;
        let buckets = needed
            .div_ceil(entries_per_bucket)
            .next_power_of_two()
            .max(1);
        Self {
            num_buckets: buckets,
            entries_per_bucket,
            fingerprint_bits,
            seed,
        }
    }
}

/// Why an insertion failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertError {
    /// The kick loop ran for [`MAX_KICKS`] rounds without finding a free slot.
    /// (A production filter would resize and rehash; the experiments measure the load
    /// factor at which this first happens, so we surface it instead.)
    FilterFull {
        /// The fingerprint that was left without a home (the original victim chain's
        /// final evictee has already been re-stored; the reported fingerprint is the
        /// one that could not be placed).
        fingerprint: u16,
    },
}

impl std::fmt::Display for InsertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InsertError::FilterFull { fingerprint } => {
                write!(
                    f,
                    "cuckoo filter full: could not place fingerprint {fingerprint:#x}"
                )
            }
        }
    }
}

impl std::error::Error for InsertError {}

/// A standard partial-key cuckoo filter over `u64` keys.
#[derive(Debug, Clone)]
pub struct CuckooFilter {
    buckets: Vec<Bucket>,
    bucket_mask: usize,
    entries_per_bucket: usize,
    fingerprinter: Fingerprinter,
    partial_hasher: SaltedHasher,
    items: usize,
    rng: StdRng,
    params: CuckooFilterParams,
}

impl CuckooFilter {
    /// Create an empty filter with the given parameters.
    pub fn new(params: CuckooFilterParams) -> Self {
        let num_buckets = params.num_buckets.next_power_of_two().max(1);
        assert!(
            params.entries_per_bucket > 0,
            "entries_per_bucket must be positive"
        );
        let family = HashFamily::new(params.seed);
        Self {
            buckets: (0..num_buckets)
                .map(|_| Bucket::new(params.entries_per_bucket))
                .collect(),
            bucket_mask: num_buckets - 1,
            entries_per_bucket: params.entries_per_bucket,
            fingerprinter: Fingerprinter::new(&family, params.fingerprint_bits),
            partial_hasher: family.hasher(ccf_hash::salted::purpose::PARTIAL_KEY),
            items: 0,
            rng: StdRng::seed_from_u64(params.seed ^ 0xCCF0_CCF0),
            params: CuckooFilterParams {
                num_buckets,
                ..params
            },
        }
    }

    /// Create an empty filter with explicit geometry (used by Algorithm 2, which builds
    /// a filter with the *same* `(m, b)` dimensions as the CCF it is derived from).
    pub fn with_geometry(
        num_buckets: usize,
        entries_per_bucket: usize,
        fingerprint_bits: u32,
        seed: u64,
    ) -> Self {
        Self::new(CuckooFilterParams {
            num_buckets,
            entries_per_bucket,
            fingerprint_bits,
            seed,
        })
    }

    /// The parameters this filter was built with (with `num_buckets` normalized to the
    /// actual power of two in use).
    pub fn params(&self) -> &CuckooFilterParams {
        &self.params
    }

    /// Number of buckets `m`.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Entries per bucket `b`.
    pub fn entries_per_bucket(&self) -> usize {
        self.entries_per_bucket
    }

    /// Number of fingerprints currently stored.
    pub fn len(&self) -> usize {
        self.items
    }

    /// Whether the filter stores no fingerprints.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Total number of entry slots (`m · b`).
    pub fn capacity(&self) -> usize {
        self.buckets.len() * self.entries_per_bucket
    }

    /// Load factor β: occupied slots / total slots.
    pub fn load_factor(&self) -> f64 {
        self.items as f64 / self.capacity() as f64
    }

    /// Serialized size in bits: `m · b · |κ|`.
    pub fn size_bits(&self) -> usize {
        self.capacity() * self.params.fingerprint_bits as usize
    }

    /// Occupancy statistics (used by the experiment harness).
    pub fn occupancy(&self) -> OccupancyStats {
        OccupancyStats::from_counts(
            self.buckets.iter().map(|b| b.len()),
            self.entries_per_bucket,
        )
    }

    /// The (fingerprint, primary bucket) pair for a key.
    #[inline]
    pub fn index_of(&self, key: u64) -> (u16, usize) {
        self.fingerprinter
            .fingerprint_and_bucket(key, self.buckets.len())
    }

    /// The alternate bucket for a (bucket, fingerprint) pair: ℓ′ = ℓ ⊕ h(κ).
    #[inline]
    pub fn alt_bucket(&self, bucket: usize, fp: u16) -> usize {
        (bucket ^ self.partial_hasher.hash_u64(u64::from(fp)) as usize) & self.bucket_mask
    }

    /// Insert a key. Duplicate keys insert additional fingerprint copies (§4.3).
    pub fn insert(&mut self, key: u64) -> Result<(), InsertError> {
        let (fp, bucket) = self.index_of(key);
        self.insert_fingerprint(fp, bucket)
    }

    /// Insert a raw (fingerprint, primary-bucket) pair. Exposed so that Algorithm 2 can
    /// copy surviving entries of a CCF into a fresh filter without re-deriving keys.
    pub fn insert_fingerprint(&mut self, fp: u16, bucket: usize) -> Result<(), InsertError> {
        debug_assert_ne!(fp, 0);
        let bucket = bucket & self.bucket_mask;
        let alt = self.alt_bucket(bucket, fp);

        // Prefer the primary bucket, then the alternate (§4.1: "ℓ being preferred
        // over ℓ′").
        if self.buckets[bucket].try_insert(fp) || self.buckets[alt].try_insert(fp) {
            self.items += 1;
            return Ok(());
        }

        // Both buckets full: kick a random victim and relocate it, up to MAX_KICKS.
        let mut current_bucket = if self.rng.gen_bool(0.5) { bucket } else { alt };
        let mut current_fp = fp;
        for _ in 0..MAX_KICKS {
            let slot = self.rng.gen_range(0..self.entries_per_bucket);
            let victim = self.buckets[current_bucket].swap(slot, current_fp);
            debug_assert_ne!(victim, 0, "kicked an empty slot from a full bucket");
            current_fp = victim;
            current_bucket = self.alt_bucket(current_bucket, current_fp);
            if self.buckets[current_bucket].try_insert(current_fp) {
                self.items += 1;
                return Ok(());
            }
        }
        Err(InsertError::FilterFull {
            fingerprint: current_fp,
        })
    }

    /// Query whether a key may be in the set. No false negatives for inserted keys
    /// (unless a copy was deleted).
    pub fn contains(&self, key: u64) -> bool {
        let (fp, bucket) = self.index_of(key);
        let alt = self.alt_bucket(bucket, fp);
        self.buckets[bucket].contains(fp) || self.buckets[alt].contains(fp)
    }

    /// Number of stored copies of the key's fingerprint in its bucket pair (≤ 2b).
    pub fn count(&self, key: u64) -> usize {
        let (fp, bucket) = self.index_of(key);
        let alt = self.alt_bucket(bucket, fp);
        if bucket == alt {
            self.buckets[bucket].count(fp)
        } else {
            self.buckets[bucket].count(fp) + self.buckets[alt].count(fp)
        }
    }

    /// Delete one copy of a key's fingerprint. Returns `true` if a copy was removed.
    ///
    /// As with all cuckoo filters, deleting a key that was never inserted may remove
    /// another key's colliding fingerprint; only delete keys known to be present.
    pub fn delete(&mut self, key: u64) -> bool {
        let (fp, bucket) = self.index_of(key);
        let alt = self.alt_bucket(bucket, fp);
        if self.buckets[bucket].remove_one(fp) || self.buckets[alt].remove_one(fp) {
            self.items -= 1;
            true
        } else {
            false
        }
    }

    /// Theoretical FPR bound for a membership query: `E[D] · 2^{-|κ|}` where `D` is the
    /// number of occupied entries in a bucket pair (§4.2 / eq. 4), estimated from the
    /// current occupancy.
    pub fn expected_fpr(&self) -> f64 {
        let avg_occupied_pair = 2.0 * self.load_factor() * self.entries_per_bucket as f64;
        avg_occupied_pair * 2f64.powi(-(self.params.fingerprint_bits as i32))
    }

    /// Expose bucket contents for size/occupancy analysis and semi-sorting experiments.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params(seed: u64) -> CuckooFilterParams {
        CuckooFilterParams {
            num_buckets: 1 << 10,
            entries_per_bucket: 4,
            fingerprint_bits: 12,
            seed,
        }
    }

    #[test]
    fn no_false_negatives() {
        let mut f = CuckooFilter::new(small_params(1));
        let n = 3500; // ~85% load
        for k in 0..n {
            f.insert(k).expect("insert should succeed below capacity");
        }
        for k in 0..n {
            assert!(f.contains(k), "false negative for {k}");
        }
    }

    #[test]
    fn fpr_is_near_theory() {
        let mut f = CuckooFilter::new(small_params(2));
        for k in 0..3800u64 {
            f.insert(k).unwrap();
        }
        let expected = f.expected_fpr();
        let trials = 200_000u64;
        let fps = (0..trials).filter(|&k| f.contains(k + 1_000_000)).count();
        let measured = fps as f64 / trials as f64;
        assert!(
            measured < expected * 2.0 + 1e-3,
            "measured FPR {measured} far above expected {expected}"
        );
    }

    #[test]
    fn achieves_high_load_factor_on_unique_keys() {
        // §4.2: an optimally sized filter empirically achieves β ≈ 95% with b = 4.
        let mut f = CuckooFilter::new(small_params(3));
        let mut inserted = 0u64;
        for k in 0..f.capacity() as u64 {
            if f.insert(k).is_err() {
                break;
            }
            inserted += 1;
        }
        let lf = inserted as f64 / f.capacity() as f64;
        assert!(lf > 0.93, "load factor at first failure only {lf}");
    }

    #[test]
    fn duplicate_keys_fail_early() {
        // §4.3: at most 2b copies of a key fit; the (2b+1)-th insertion must fail.
        let mut f = CuckooFilter::new(small_params(4));
        let b = f.entries_per_bucket();
        for i in 0..(2 * b) {
            f.insert(42)
                .unwrap_or_else(|_| panic!("copy {i} should fit"));
        }
        assert!(f.insert(42).is_err(), "copy {} must not fit", 2 * b + 1);
        assert_eq!(f.count(42), 2 * b);
    }

    #[test]
    fn delete_removes_one_copy_at_a_time() {
        let mut f = CuckooFilter::new(small_params(5));
        f.insert(7).unwrap();
        f.insert(7).unwrap();
        assert_eq!(f.count(7), 2);
        assert!(f.delete(7));
        assert!(f.contains(7));
        assert!(f.delete(7));
        assert!(!f.contains(7));
        assert!(!f.delete(7));
        assert_eq!(f.len(), 0);
    }

    #[test]
    fn alt_bucket_is_an_involution() {
        let f = CuckooFilter::new(small_params(6));
        for key in 0..2000u64 {
            let (fp, b) = f.index_of(key);
            let alt = f.alt_bucket(b, fp);
            assert_eq!(
                f.alt_bucket(alt, fp),
                b,
                "xor mapping must be an involution"
            );
        }
    }

    #[test]
    fn insert_after_delete_reuses_space() {
        let mut f = CuckooFilter::new(CuckooFilterParams {
            num_buckets: 8,
            entries_per_bucket: 2,
            fingerprint_bits: 8,
            seed: 9,
        });
        let mut keys: Vec<u64> = (0..12).collect();
        for &k in &keys {
            // Fill to near capacity; ignore failures.
            let _ = f.insert(k);
        }
        let len_before = f.len();
        // Delete the first half that are present and re-insert fresh keys.
        keys.retain(|&k| f.contains(k));
        for &k in keys.iter().take(len_before / 2) {
            assert!(f.delete(k));
        }
        for nk in 100..(100 + (len_before / 2) as u64) {
            f.insert(nk).expect("freed space should be reusable");
        }
        assert_eq!(f.len(), len_before);
    }

    #[test]
    fn for_capacity_sizes_generously() {
        let p = CuckooFilterParams::for_capacity(10_000, 12, 0);
        assert!(p.num_buckets * p.entries_per_bucket >= 10_000);
        let mut f = CuckooFilter::new(p);
        for k in 0..10_000u64 {
            f.insert(k)
                .expect("sized-for capacity inserts must succeed");
        }
    }

    #[test]
    fn load_factor_and_len_track_insertions() {
        let mut f = CuckooFilter::new(small_params(7));
        assert!(f.is_empty());
        for k in 0..100u64 {
            f.insert(k).unwrap();
        }
        assert_eq!(f.len(), 100);
        assert!((f.load_factor() - 100.0 / f.capacity() as f64).abs() < 1e-12);
    }

    #[test]
    fn size_bits_matches_geometry() {
        let f = CuckooFilter::new(CuckooFilterParams {
            num_buckets: 1 << 8,
            entries_per_bucket: 4,
            fingerprint_bits: 9,
            seed: 0,
        });
        assert_eq!(f.size_bits(), 256 * 4 * 9);
    }

    #[test]
    fn different_seeds_produce_different_layouts_same_semantics() {
        let mut a = CuckooFilter::new(small_params(100));
        let mut b = CuckooFilter::new(small_params(200));
        for k in 0..500u64 {
            a.insert(k).unwrap();
            b.insert(k).unwrap();
        }
        for k in 0..500u64 {
            assert!(a.contains(k) && b.contains(k));
        }
        // Layouts should differ (fingerprints under different salts).
        let differs = (0..500u64).any(|k| a.index_of(k) != b.index_of(k));
        assert!(differs);
    }
}
