//! A standard partial-key cuckoo filter (§4.2), with the multiset insertion behaviour
//! of §4.3, capacity-doubling growth, and a batched query path.
//!
//! The filter stores only a small fingerprint κ of each key. An item hashes to a
//! primary bucket ℓ; the alternate bucket is ℓ′ = ℓ ⊕ h(κ), computable from the stored
//! fingerprint alone, which is what allows kicked entries to be relocated without the
//! original key. Insertion kicks random victims for up to
//! [`CuckooFilterParams::max_kicks`] rounds (default [`MAX_KICKS`]) before reporting
//! failure.
//!
//! Duplicate keys *can* be inserted (each inserts another copy of κ), but a bucket pair
//! holds at most `2b` entries, so heavy duplication quickly causes insertion failures —
//! the behaviour quantified in Figure 4 and the motivation for the CCF's chaining.
//!
//! # Growth
//!
//! A filter can double its capacity with [`CuckooFilter::grow`] (or transparently, by
//! enabling [`CuckooFilterParams::auto_grow`]). Doubling a *partial-key* structure is
//! subtle: the stored fingerprints cannot reproduce the key hash bits a larger table
//! would normally consume. The filter therefore uses a **split geometry**: the primary
//! bucket's low `log2(base_buckets)` bits always come from the key hash, the alternate
//! mapping ℓ′ = ℓ ⊕ (h(κ) mod base_buckets) only ever touches those low bits, and every
//! doubling appends one high index bit drawn from an independent hash of κ
//! ([`ccf_hash::salted::purpose::GROWTH`]). Both queries and migration can recompute
//! the high bits from the fingerprint alone, so growth is a pure O(m·b) remap
//! (`index → index + bit(κ)·m_old`) that can never fail and preserves every membership
//! answer. For a filter that has never grown the scheme is bit-for-bit identical to the
//! classic ℓ ⊕ h(κ) layout.

use ccf_hash::{Fingerprinter, HashFamily};
use ccf_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::geometry::{probe_chunked, SplitGeometry, MAX_GROWTHS_PER_INSERT};
use crate::instruments::FilterInstruments;
use crate::metrics::{GrowthStats, OccupancyStats};
use crate::snapshot::{ByteReader, ByteWriter, SnapshotError};
use crate::store::{AnyBuckets, BucketStore, StorageKind};

/// Default maximum number of kick (evict-and-reinsert) rounds before an insertion
/// fails, matching the constant used by the original cuckoo-filter implementation.
/// The per-filter budget is the [`CuckooFilterParams::max_kicks`] knob.
pub const MAX_KICKS: usize = 500;

/// Configuration for a [`CuckooFilter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CuckooFilterParams {
    /// Number of buckets `m`. Rounded up to a power of two so the ℓ ⊕ h(κ) partial-key
    /// mapping stays within range and is an involution.
    pub num_buckets: usize,
    /// Entries per bucket `b` (the paper uses 4 as the typical setting).
    pub entries_per_bucket: usize,
    /// Key fingerprint width |κ| in bits (1..=16).
    pub fingerprint_bits: u32,
    /// Seed for the hash family (varying it reproduces the paper's random-salt runs).
    pub seed: u64,
    /// When `true`, an insertion that would otherwise fail doubles the filter
    /// ([`CuckooFilter::grow`]) and retries transparently, unless the failure is a
    /// bucket pair saturated with copies of one fingerprint (which no amount of growth
    /// can separate — the §4.3 duplicate cap still applies).
    pub auto_grow: bool,
    /// Which bucket-storage backend holds the fingerprints. Purely representational:
    /// membership behavior is identical across backends. Defaults to the
    /// [`StorageKind::from_env`] resolution (packed unless `CCF_STORAGE` says
    /// otherwise), which is how CI runs the whole suite against both backends.
    pub storage: StorageKind,
    /// Maximum kick (evict-and-reinsert) rounds per placement attempt before the
    /// insertion is reported as failed (default [`MAX_KICKS`]; must be positive).
    /// Bounded configs make kick-depth telemetry directly checkable: every recorded
    /// depth is `≤ max_kicks`.
    pub max_kicks: usize,
}

impl Default for CuckooFilterParams {
    fn default() -> Self {
        Self {
            num_buckets: 1 << 16,
            entries_per_bucket: 4,
            fingerprint_bits: 12,
            seed: 0,
            auto_grow: false,
            storage: StorageKind::from_env(),
            max_kicks: MAX_KICKS,
        }
    }
}

impl CuckooFilterParams {
    /// Parameters sized to hold `capacity` items at roughly 95 % load factor with
    /// `b = 4` (the optimally-sized configuration of §4.2).
    pub fn for_capacity(capacity: usize, fingerprint_bits: u32, seed: u64) -> Self {
        let entries_per_bucket = 4;
        let needed = (capacity as f64 / 0.95).ceil() as usize;
        let buckets = needed
            .div_ceil(entries_per_bucket)
            .next_power_of_two()
            .max(1);
        Self {
            num_buckets: buckets,
            entries_per_bucket,
            fingerprint_bits,
            seed,
            auto_grow: false,
            storage: StorageKind::from_env(),
            max_kicks: MAX_KICKS,
        }
    }

    /// Enable transparent grow-and-retry on insertion failure.
    pub fn with_auto_grow(mut self) -> Self {
        self.auto_grow = true;
        self
    }

    /// Select the bucket-storage backend.
    pub fn with_storage(mut self, storage: StorageKind) -> Self {
        self.storage = storage;
        self
    }

    /// Set the kick budget per placement attempt (must be positive).
    pub fn with_max_kicks(mut self, max_kicks: usize) -> Self {
        self.max_kicks = max_kicks;
        self
    }
}

/// Why an insertion failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertError {
    /// The kick loop ran for [`CuckooFilterParams::max_kicks`] rounds without finding a free slot, the
    /// bucket pair was already saturated with copies of the fingerprint, or (with
    /// `auto_grow`) growth retries were exhausted.
    FilterFull {
        /// The fingerprint that was left without a home (the original victim chain's
        /// final evictee has already been re-stored; the reported fingerprint is the
        /// one that could not be placed).
        fingerprint: u16,
    },
}

impl std::fmt::Display for InsertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InsertError::FilterFull { fingerprint } => {
                write!(
                    f,
                    "cuckoo filter full: could not place fingerprint {fingerprint:#x}"
                )
            }
        }
    }
}

impl std::error::Error for InsertError {}

/// A standard partial-key cuckoo filter over `u64` keys.
#[derive(Debug, Clone)]
pub struct CuckooFilter {
    /// All `m · b` fingerprint slots in the configured backend — bit-packed lanes or
    /// semisort-compressed records — with maintained occupancy counters (which also
    /// replace the old per-filter item counter).
    store: AnyBuckets,
    /// `num_buckets - 1`; sanitizes caller-supplied bucket indices.
    bucket_mask: usize,
    /// Split bucket geometry: base size, growth bits and the index-derivation hashes.
    geometry: SplitGeometry,
    entries_per_bucket: usize,
    fingerprinter: Fingerprinter,
    /// Fraction of fingerprint values whose bucket pair degenerates to a single bucket
    /// (h(κ) ≡ 0 mod base_buckets); feeds the occupied-pair estimate of
    /// [`CuckooFilter::expected_fpr`].
    self_paired_fraction: f64,
    auto_grow: bool,
    rng: StdRng,
    params: CuckooFilterParams,
    /// Event telemetry (kick depths, grows, fail-fasts); disabled until
    /// [`CuckooFilter::attach_telemetry`] resolves it against a registry.
    instruments: FilterInstruments,
}

impl CuckooFilter {
    /// Create an empty filter with the given parameters.
    pub fn new(params: CuckooFilterParams) -> Self {
        Self::with_split_geometry(params.num_buckets, 0, params)
    }

    /// Create an empty filter with explicit geometry (used by Algorithm 2, which builds
    /// a filter with the *same* `(m, b)` dimensions — and storage backend — as the CCF
    /// it is derived from).
    pub fn with_geometry(
        num_buckets: usize,
        entries_per_bucket: usize,
        fingerprint_bits: u32,
        seed: u64,
        storage: StorageKind,
    ) -> Self {
        Self::new(CuckooFilterParams {
            num_buckets,
            entries_per_bucket,
            fingerprint_bits,
            seed,
            auto_grow: false,
            storage,
            max_kicks: MAX_KICKS,
        })
    }

    /// Create an empty filter whose index derivation matches a structure that started
    /// at `base_buckets` and has grown `growth_bits` times (total bucket count
    /// `base_buckets · 2^growth_bits`). Derived filters (Algorithm 2) of a *grown*
    /// source must share its split geometry, not just its total size, for fingerprints
    /// copied bucket-by-bucket to stay reachable.
    pub fn with_split_geometry(
        base_buckets: usize,
        growth_bits: u32,
        params: CuckooFilterParams,
    ) -> Self {
        assert!(
            params.entries_per_bucket > 0,
            "entries_per_bucket must be positive"
        );
        assert!(params.max_kicks > 0, "max_kicks must be positive");
        let family = HashFamily::new(params.seed);
        let geometry = SplitGeometry::new(&family, base_buckets, growth_bits);
        let num_buckets = geometry.num_buckets();
        Self {
            store: AnyBuckets::new(params.storage, num_buckets, params.entries_per_bucket),
            bucket_mask: num_buckets - 1,
            entries_per_bucket: params.entries_per_bucket,
            fingerprinter: Fingerprinter::new(&family, params.fingerprint_bits),
            self_paired_fraction: self_paired_fraction(&geometry, params.fingerprint_bits),
            geometry,
            auto_grow: params.auto_grow,
            rng: StdRng::seed_from_u64(params.seed ^ 0xCCF0_CCF0),
            params: CuckooFilterParams {
                num_buckets,
                ..params
            },
            instruments: FilterInstruments::disabled(),
        }
    }

    /// Resolve this filter's event instruments against `telemetry`, labelling its
    /// series `structure="cuckoo_filter"` plus the caller's `extra` labels (`shard`,
    /// `storage`, …). Attaching a [`Telemetry::disabled`] handle detaches the filter.
    /// Until attached, every recording site costs one branch.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry, extra: &[(&str, &str)]) {
        self.instruments = FilterInstruments::resolve(telemetry, "cuckoo_filter", extra);
    }

    /// The instrument bundle this filter records into (disabled by default).
    pub fn instruments(&self) -> &FilterInstruments {
        &self.instruments
    }

    /// The parameters this filter was built with (with `num_buckets` normalized to the
    /// actual power of two in use, and updated after every growth).
    pub fn params(&self) -> &CuckooFilterParams {
        &self.params
    }

    /// Number of buckets `m`.
    pub fn num_buckets(&self) -> usize {
        self.store.num_buckets()
    }

    /// Bucket count at construction (the key hash addresses only these; growth bits
    /// extend the index above them).
    pub fn base_buckets(&self) -> usize {
        self.geometry.base_buckets()
    }

    /// Number of capacity doublings applied so far.
    pub fn growth_bits(&self) -> u32 {
        self.geometry.growth_bits()
    }

    /// Whether insertion failures trigger transparent grow-and-retry.
    pub fn auto_grow(&self) -> bool {
        self.auto_grow
    }

    /// Entries per bucket `b`.
    pub fn entries_per_bucket(&self) -> usize {
        self.entries_per_bucket
    }

    /// Number of fingerprints currently stored — an O(1) maintained counter, not a
    /// slot scan.
    pub fn len(&self) -> usize {
        self.store.occupied()
    }

    /// Whether the filter stores no fingerprints.
    pub fn is_empty(&self) -> bool {
        self.store.occupied() == 0
    }

    /// Total number of entry slots (`m · b`).
    pub fn capacity(&self) -> usize {
        self.store.num_buckets() * self.entries_per_bucket
    }

    /// Load factor β: occupied slots / total slots.
    pub fn load_factor(&self) -> f64 {
        self.store.occupied() as f64 / self.capacity() as f64
    }

    /// Serialized size in bits: `m · b · |κ|`.
    pub fn size_bits(&self) -> usize {
        self.capacity() * self.params.fingerprint_bits as usize
    }

    /// Which bucket-storage backend holds this filter's fingerprints.
    pub fn storage_kind(&self) -> StorageKind {
        self.store.kind()
    }

    /// Occupancy statistics (used by the experiment harness) — aggregated from the
    /// store's maintained per-bucket counters, one byte read per bucket, with the
    /// store's actual allocated bytes attached so memory savings are observable.
    pub fn occupancy(&self) -> OccupancyStats {
        OccupancyStats::from_counts(
            self.store.counts().iter().map(|&c| usize::from(c)),
            self.entries_per_bucket,
        )
        .with_heap_bytes(self.store.heap_bytes())
    }

    /// Growth statistics: base geometry, current geometry and doubling count.
    pub fn growth_stats(&self) -> GrowthStats {
        GrowthStats {
            base_buckets: self.geometry.base_buckets(),
            current_buckets: self.store.num_buckets(),
            growth_bits: self.geometry.growth_bits(),
        }
    }

    /// The (fingerprint, primary bucket) pair for a key.
    #[inline]
    pub fn index_of(&self, key: u64) -> (u16, usize) {
        let (fp, base) = self
            .fingerprinter
            .fingerprint_and_bucket(key, self.geometry.base_buckets());
        (fp, self.geometry.home_bucket(base, fp))
    }

    /// The alternate bucket for a (bucket, fingerprint) pair: ℓ′ = ℓ ⊕ h(κ), with the
    /// xor confined to the base-geometry bits so a pair always shares its growth bits.
    #[inline]
    pub fn alt_bucket(&self, bucket: usize, fp: u16) -> usize {
        self.geometry.alt_bucket(bucket, fp)
    }

    /// Number of copies of `fp` its bucket pair can hold: `2b`, or `b` for the
    /// degenerate self-paired case ℓ′ == ℓ.
    fn pair_slot_capacity(&self, bucket: usize, alt: usize) -> usize {
        if bucket == alt {
            self.entries_per_bucket
        } else {
            2 * self.entries_per_bucket
        }
    }

    fn pair_fp_count(&self, bucket: usize, alt: usize, fp: u16) -> usize {
        if bucket == alt {
            self.store.count(bucket, fp)
        } else {
            self.store.count(bucket, fp) + self.store.count(alt, fp)
        }
    }

    /// Insert a key. Duplicate keys insert additional fingerprint copies (§4.3).
    pub fn insert(&mut self, key: u64) -> Result<(), InsertError> {
        let (fp, bucket) = self.index_of(key);
        self.insert_fingerprint(fp, bucket)
    }

    /// Insert a raw (fingerprint, primary-bucket) pair. Exposed so that Algorithm 2 can
    /// copy surviving entries of a CCF into a fresh filter without re-deriving keys —
    /// the same keyless property growth relies on. Either bucket of the pair is
    /// accepted (the ℓ ⊕ h(κ) mapping is an involution).
    pub fn insert_fingerprint(&mut self, fp: u16, bucket: usize) -> Result<(), InsertError> {
        let result = self.insert_fingerprint_inner(fp, bucket);
        match &result {
            Ok(()) => self.instruments.inserts.inc(),
            Err(_) => self.instruments.insert_failures.inc(),
        }
        result
    }

    fn insert_fingerprint_inner(&mut self, fp: u16, bucket: usize) -> Result<(), InsertError> {
        match self.place_fingerprint(fp, bucket) {
            Ok(()) => Ok(()),
            Err((fp, _)) if !self.auto_grow => Err(InsertError::FilterFull { fingerprint: fp }),
            Err((mut homeless, mut home)) => {
                for _ in 0..MAX_GROWTHS_PER_INSERT {
                    // A pair saturated with copies of one fingerprint can never be
                    // helped by growing: the copies share both candidate buckets at
                    // every size (they carry identical growth bits), so the §4.3
                    // duplicate cap binds regardless of capacity.
                    let alt = self.alt_bucket(home, homeless);
                    if self.pair_fp_count(home, alt, homeless) >= self.pair_slot_capacity(home, alt)
                    {
                        return Err(InsertError::FilterFull {
                            fingerprint: homeless,
                        });
                    }
                    let old_m = self.store.num_buckets();
                    let bit = self.geometry.growth_bits();
                    self.grow();
                    // The homeless fingerprint's pair extends by its own growth bit.
                    if self.geometry.growth_bit(homeless, bit) {
                        home += old_m;
                    }
                    match self.place_fingerprint(homeless, home) {
                        Ok(()) => return Ok(()),
                        Err((next_fp, next_home)) => {
                            homeless = next_fp;
                            home = next_home;
                        }
                    }
                }
                Err(InsertError::FilterFull {
                    fingerprint: homeless,
                })
            }
        }
    }

    /// Place a fingerprint, kicking victims as needed. On failure returns the homeless
    /// fingerprint and the last bucket of its pair, so a grow-and-retry caller can
    /// re-place it after the geometry changes.
    fn place_fingerprint(&mut self, fp: u16, bucket: usize) -> Result<(), (u16, usize)> {
        debug_assert_ne!(fp, 0);
        let bucket = bucket & self.bucket_mask;
        let alt = self.alt_bucket(bucket, fp);

        // Prefer the primary bucket, then the alternate (§4.1: "ℓ being preferred
        // over ℓ′").
        if self.store.try_insert(bucket, fp) {
            self.instruments.kick_depth.observe(0);
            return Ok(());
        }
        if bucket != alt && self.store.try_insert(alt, fp) {
            self.instruments.kick_depth.observe(0);
            return Ok(());
        }

        // A pair already holding its maximum number of κ copies cannot accept another:
        // every copy shares both candidate buckets, so the kick loop would only churn
        // copies of κ in place until the kick budget runs out. Fail fast with the
        // filter untouched. Note the degenerate self-paired case (ℓ′ == ℓ, i.e.
        // h(κ) ≡ 0 mod m₀) caps at `b`, not `2b`: the "pair" is a single bucket.
        if self.pair_fp_count(bucket, alt, fp) >= self.pair_slot_capacity(bucket, alt) {
            self.instruments.pair_saturated_failfasts.inc();
            return Err((fp, bucket));
        }

        let mut kicks = 0u64;
        let mut current_fp = fp;
        let mut current_bucket;
        if bucket == alt {
            // Degenerate pair with a full bucket: only a victim whose own alternate
            // bucket differs can actually leave; kicking a self-paired victim swaps in
            // place and burns kick rounds without progress. If no victim can move,
            // the insertion is hopeless at this size — fail fast.
            let movable: Vec<usize> = (0..self.entries_per_bucket)
                .filter(|&slot| {
                    let victim = self.store.get(bucket, slot);
                    self.alt_bucket(bucket, victim) != bucket
                })
                .collect();
            if movable.is_empty() {
                self.instruments.self_paired_failfasts.inc();
                return Err((fp, bucket));
            }
            let slot = movable[self.rng.gen_range(0..movable.len())];
            let victim = self.store.swap(bucket, slot, fp);
            kicks = 1;
            current_fp = victim;
            current_bucket = self.alt_bucket(bucket, victim);
            if self.store.try_insert(current_bucket, current_fp) {
                self.instruments.kick_depth.observe(kicks);
                return Ok(());
            }
        } else {
            // Both buckets full: start the kick loop from a random side.
            current_bucket = if self.rng.gen_bool(0.5) { bucket } else { alt };
        }
        for _ in 0..self.params.max_kicks {
            let slot = self.rng.gen_range(0..self.entries_per_bucket);
            let victim = self.store.swap(current_bucket, slot, current_fp);
            debug_assert_ne!(victim, 0, "kicked an empty slot from a full bucket");
            kicks += 1;
            current_fp = victim;
            current_bucket = self.alt_bucket(current_bucket, current_fp);
            if self.store.try_insert(current_bucket, current_fp) {
                self.instruments.kick_depth.observe(kicks);
                return Ok(());
            }
        }
        self.instruments.kick_depth.observe(kicks);
        Err((current_fp, current_bucket))
    }

    /// Double the filter's capacity, migrating every stored fingerprint without the
    /// original keys. Each entry either keeps its bucket index or moves up by the old
    /// bucket count, according to its fingerprint's next growth bit — an O(m·b) remap
    /// that cannot fail and preserves every membership answer.
    pub fn grow(&mut self) {
        self.instruments.grows.inc();
        let old_m = self.store.num_buckets();
        let bit = self.geometry.growth_bits();
        self.store.extend_buckets(old_m);
        for bucket in 0..old_m {
            for slot in 0..self.entries_per_bucket {
                let fp = self.store.get(bucket, slot);
                if fp != 0 && self.geometry.growth_bit(fp, bit) {
                    self.store.take(bucket, slot);
                    let moved = self.store.try_insert(bucket + old_m, fp);
                    debug_assert!(moved, "split target bucket cannot overflow");
                }
            }
        }
        self.geometry.record_doubling();
        self.bucket_mask = self.store.num_buckets() - 1;
        self.params.num_buckets = self.store.num_buckets();
    }

    /// Query whether a key may be in the set. No false negatives for inserted keys
    /// (unless a copy was deleted).
    pub fn contains(&self, key: u64) -> bool {
        let (fp, bucket) = self.index_of(key);
        let alt = self.alt_bucket(bucket, fp);
        self.store.contains_pair(bucket, alt, fp)
    }

    /// Batched membership query: results are bit-identical to calling
    /// [`CuckooFilter::contains`] per key, using the chunked hash→prefetch→probe
    /// driver ([`crate::geometry::probe_chunked`]) shared by every batched query
    /// path, with the probe itself the store's branchless SWAR pair compare.
    pub fn contains_batch(&self, keys: &[u64]) -> Vec<bool> {
        probe_chunked(
            keys,
            |key| {
                let (fp, bucket) = self.index_of(key);
                (fp, bucket, self.alt_bucket(bucket, fp))
            },
            |bucket| self.store.prefetch(bucket),
            |fp, bucket, alt| self.store.contains_pair(bucket, alt, fp),
        )
    }

    /// Number of stored copies of the key's fingerprint in its bucket pair: at most
    /// `2b`, or `b` for a degenerate self-paired fingerprint (ℓ′ == ℓ, where the
    /// "pair" is a single bucket — the same cap insertion enforces).
    pub fn count(&self, key: u64) -> usize {
        let (fp, bucket) = self.index_of(key);
        let alt = self.alt_bucket(bucket, fp);
        self.pair_fp_count(bucket, alt, fp)
    }

    /// Delete one copy of a key's fingerprint. Returns `true` if a copy was removed.
    ///
    /// As with all cuckoo filters, deleting a key that was never inserted may remove
    /// another key's colliding fingerprint; only delete keys known to be present.
    pub fn delete(&mut self, key: u64) -> bool {
        let (fp, bucket) = self.index_of(key);
        let alt = self.alt_bucket(bucket, fp);
        let removed =
            self.store.remove_one(bucket, fp) || (bucket != alt && self.store.remove_one(alt, fp));
        if removed {
            self.instruments.deletes.inc();
        }
        removed
    }

    /// Theoretical FPR bound for a membership query: `E[D] · 2^{-|κ|}` where `D` is
    /// the number of occupied entries in the queried bucket pair (§4.2 / eq. 4).
    ///
    /// `E[D]` is estimated from the actual occupancy: a random probe sees the mean
    /// bucket occupancy `β·b` twice for a regular pair but only once for a degenerate
    /// self-paired fingerprint (ℓ′ == ℓ), so the pair estimate is `(2 − p₀)·β·b` with
    /// `p₀` the exact fraction of fingerprint values that self-pair. An empty filter
    /// reports 0.
    pub fn expected_fpr(&self) -> f64 {
        if self.store.occupied() == 0 {
            return 0.0;
        }
        let mean_bucket_occupancy = self.load_factor() * self.entries_per_bucket as f64;
        let occupied_pair = (2.0 - self.self_paired_fraction) * mean_bucket_occupancy;
        occupied_pair * 2f64.powi(-(self.params.fingerprint_bits as i32))
    }

    /// Expose the fingerprint store for size/occupancy analysis and storage-backend
    /// experiments.
    pub fn store(&self) -> &AnyBuckets {
        &self.store
    }

    /// Serialize the filter into a sealed snapshot image (see [`crate::snapshot`]):
    /// configuration, split geometry, the RNG's exact state, and the raw storage
    /// words of whichever backend is in use. [`CuckooFilter::from_snapshot_bytes`]
    /// rebuilds a *bit-identical* filter — every post-restore membership answer,
    /// kick-victim draw, and growth decision matches the never-persisted original.
    /// Telemetry attachment is process state, not filter state, and is not
    /// persisted; reloaded filters start detached.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new(Self::SNAPSHOT_MAGIC, Self::SNAPSHOT_VERSION);
        w.put_u8(self.store.kind().tag());
        w.put_usize(self.geometry.base_buckets());
        w.put_u32(self.geometry.growth_bits());
        w.put_usize(self.entries_per_bucket);
        w.put_u32(self.params.fingerprint_bits);
        w.put_u64(self.params.seed);
        w.put_u8(u8::from(self.auto_grow));
        w.put_usize(self.params.max_kicks);
        for word in self.rng.state() {
            w.put_u64(word);
        }
        w.put_len_bytes(self.store.counts());
        w.put_u64_slice(self.store.raw_words());
        w.seal()
    }

    /// Rebuild a filter from a [`CuckooFilter::to_snapshot_bytes`] image. Hashers,
    /// geometry and derived statistics are reconstructed from the persisted seed and
    /// dimensions; only the raw storage words, counters and RNG state are taken from
    /// the image, and each is validated (envelope checksum first, then structural
    /// checks) so corruption yields a typed [`SnapshotError`], never a panic or a
    /// silently wrong filter.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = ByteReader::open(bytes, Self::SNAPSHOT_MAGIC, Self::SNAPSHOT_VERSION)?;
        let storage = StorageKind::from_tag(r.get_u8()?)
            .ok_or_else(|| SnapshotError::Invalid("unknown storage-backend tag".into()))?;
        let base_buckets = r.get_usize()?;
        let growth_bits = r.get_u32()?;
        let entries_per_bucket = r.get_usize()?;
        let fingerprint_bits = r.get_u32()?;
        let seed = r.get_u64()?;
        let auto_grow = match r.get_u8()? {
            0 => false,
            1 => true,
            t => return Err(SnapshotError::Invalid(format!("auto_grow flag byte {t}"))),
        };
        let max_kicks = r.get_usize()?;
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = r.get_u64()?;
        }
        let counts = r.get_len_bytes()?.to_vec();
        let words = r.get_u64_slice()?;
        r.finish()?;

        if !base_buckets.is_power_of_two() {
            return Err(SnapshotError::Invalid(format!(
                "base_buckets {base_buckets} is not a power of two"
            )));
        }
        let num_buckets = if growth_bits < usize::BITS {
            base_buckets
                .checked_shl(growth_bits)
                .filter(|&m| m >> growth_bits == base_buckets)
        } else {
            None
        }
        .ok_or_else(|| {
            SnapshotError::Invalid(format!(
                "geometry overflows: base_buckets {base_buckets} doubled {growth_bits} times"
            ))
        })?;
        if fingerprint_bits == 0 || fingerprint_bits > 16 {
            return Err(SnapshotError::Invalid(format!(
                "fingerprint_bits {fingerprint_bits} outside 1..=16"
            )));
        }
        if max_kicks == 0 {
            return Err(SnapshotError::Invalid("max_kicks is zero".into()));
        }
        // Validate the storage image (including the bucket width) *before* building
        // the filter shell: `with_split_geometry` asserts on widths the backend
        // cannot represent, and a corrupt image must fail typed, not panic.
        let store =
            AnyBuckets::from_raw_parts(storage, num_buckets, entries_per_bucket, words, counts)?;
        let mut filter = Self::with_split_geometry(
            base_buckets,
            growth_bits,
            CuckooFilterParams {
                num_buckets: base_buckets,
                entries_per_bucket,
                fingerprint_bits,
                seed,
                auto_grow,
                storage,
                max_kicks,
            },
        );
        filter.store = store;
        filter.rng = StdRng::from_state(rng_state);
        Ok(filter)
    }

    /// Magic of a [`CuckooFilter`] snapshot image: `"CKFS"`.
    pub const SNAPSHOT_MAGIC: u32 = u32::from_le_bytes(*b"CKFS");
    /// Current [`CuckooFilter`] snapshot format version.
    pub const SNAPSHOT_VERSION: u8 = 1;
}

/// Exact fraction of fingerprint values whose alternate bucket equals their primary
/// bucket (h(κ) ≡ 0 mod base_buckets). The fingerprint domain is at most 2^16 values,
/// so the scan is cheap enough to run once per construction.
fn self_paired_fraction(geometry: &SplitGeometry, fp_bits: u32) -> f64 {
    let fp_values = (1u32 << fp_bits) - 1; // κ = 0 is reserved for empty slots.
    let self_paired = (1..=fp_values)
        .filter(|&fp| geometry.alt_bucket(0, fp as u16) == 0)
        .count();
    self_paired as f64 / fp_values as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params(seed: u64) -> CuckooFilterParams {
        // `..Default::default()` picks up the storage backend from the environment,
        // so `CCF_STORAGE=semisort` runs this whole suite against the compressed
        // store (the CI storage matrix).
        CuckooFilterParams {
            num_buckets: 1 << 10,
            seed,
            ..Default::default()
        }
    }

    /// A fingerprint with h(κ) ≡ 0 mod base_buckets, i.e. whose bucket pair collapses
    /// to a single bucket.
    fn self_paired_fp(f: &CuckooFilter) -> u16 {
        (1..1u16 << f.params().fingerprint_bits)
            .find(|&fp| f.alt_bucket(0, fp) == 0)
            .expect("some fingerprint must self-pair")
    }

    #[test]
    fn no_false_negatives() {
        let mut f = CuckooFilter::new(small_params(1));
        let n = 3500; // ~85% load
        for k in 0..n {
            f.insert(k).expect("insert should succeed below capacity");
        }
        for k in 0..n {
            assert!(f.contains(k), "false negative for {k}");
        }
    }

    #[test]
    fn fpr_is_near_theory() {
        let mut f = CuckooFilter::new(small_params(2));
        for k in 0..3800u64 {
            f.insert(k).unwrap();
        }
        let expected = f.expected_fpr();
        let trials = 200_000u64;
        let fps = (0..trials).filter(|&k| f.contains(k + 1_000_000)).count();
        let measured = fps as f64 / trials as f64;
        assert!(
            measured < expected * 2.0 + 1e-3,
            "measured FPR {measured} far above expected {expected}"
        );
    }

    #[test]
    fn expected_fpr_is_zero_when_empty() {
        let f = CuckooFilter::new(small_params(2));
        assert_eq!(f.expected_fpr(), 0.0);
    }

    #[test]
    fn achieves_high_load_factor_on_unique_keys() {
        // §4.2: an optimally sized filter empirically achieves β ≈ 95% with b = 4.
        let mut f = CuckooFilter::new(small_params(3));
        let mut inserted = 0u64;
        for k in 0..f.capacity() as u64 {
            if f.insert(k).is_err() {
                break;
            }
            inserted += 1;
        }
        let lf = inserted as f64 / f.capacity() as f64;
        assert!(lf > 0.93, "load factor at first failure only {lf}");
    }

    #[test]
    fn duplicate_keys_fail_early() {
        // §4.3: at most 2b copies of a key fit; the (2b+1)-th insertion must fail.
        let mut f = CuckooFilter::new(small_params(4));
        let b = f.entries_per_bucket();
        for i in 0..(2 * b) {
            f.insert(42)
                .unwrap_or_else(|_| panic!("copy {i} should fit"));
        }
        assert!(f.insert(42).is_err(), "copy {} must not fit", 2 * b + 1);
        assert_eq!(f.count(42), 2 * b);
    }

    #[test]
    fn duplicate_cap_still_binds_with_auto_grow() {
        // Growth separates *different* fingerprints; copies of one fingerprint share
        // both buckets at every size, so the 2b cap must fail fast instead of growing.
        let mut f = CuckooFilter::new(small_params(4).with_auto_grow());
        let b = f.entries_per_bucket();
        for _ in 0..(2 * b) {
            f.insert(42).unwrap();
        }
        let buckets_before = f.num_buckets();
        assert!(f.insert(42).is_err());
        assert_eq!(
            f.num_buckets(),
            buckets_before,
            "a duplicate-cap failure must not trigger growth"
        );
    }

    #[test]
    fn self_paired_fingerprint_caps_at_b_and_fails_fast() {
        // Degenerate case ℓ′ == ℓ: the "pair" is one bucket, so only b copies fit
        // (mirroring the count() special case), and the failing insert must leave the
        // filter untouched instead of churning copies of κ for MAX_KICKS rounds.
        let mut f = CuckooFilter::new(small_params(5));
        let fp = self_paired_fp(&f);
        let b = f.entries_per_bucket();
        let bucket = 17; // arbitrary: every bucket self-pairs for this fingerprint
        assert_eq!(f.alt_bucket(bucket, fp), bucket);
        for i in 0..b {
            f.insert_fingerprint(fp, bucket)
                .unwrap_or_else(|_| panic!("copy {i} of a self-paired κ should fit"));
        }
        let before = f.store().bucket_slots(bucket);
        let items_before = f.len();
        assert_eq!(
            f.insert_fingerprint(fp, bucket),
            Err(InsertError::FilterFull { fingerprint: fp }),
            "copy b+1 of a self-paired fingerprint cannot fit"
        );
        assert_eq!(
            f.store().bucket_slots(bucket),
            before,
            "failing degenerate insert must not disturb the bucket"
        );
        assert_eq!(f.len(), items_before);
    }

    #[test]
    fn count_caps_at_b_for_self_paired_keys() {
        // A key whose fingerprint self-pairs (ℓ′ == ℓ) can hold at most b copies —
        // count() must agree with insertion's cap and never report a copy twice.
        let mut f = CuckooFilter::new(small_params(13));
        let b = f.entries_per_bucket();
        let key = (0..2_000_000u64)
            .find(|&k| {
                let (fp, bucket) = f.index_of(k);
                f.alt_bucket(bucket, fp) == bucket
            })
            .expect("some key must map to a self-paired fingerprint");
        for i in 0..b {
            f.insert(key)
                .unwrap_or_else(|_| panic!("copy {i} of a self-paired key should fit"));
            assert_eq!(f.count(key), i + 1, "count must not double-scan the bucket");
        }
        assert!(f.insert(key).is_err(), "copy b+1 cannot fit");
        assert_eq!(f.count(key), b, "self-paired count caps at b, not 2b");
        // Deleting drains the copies one at a time through the same degenerate pair.
        for remaining in (0..b).rev() {
            assert!(f.delete(key));
            assert_eq!(f.count(key), remaining);
        }
    }

    #[test]
    fn self_paired_insert_relocates_movable_victims() {
        // A full degenerate bucket that still holds regular entries: the insert must
        // kick one of those (they can leave) rather than spinning or failing.
        let mut f = CuckooFilter::new(CuckooFilterParams {
            num_buckets: 16,
            entries_per_bucket: 2,
            seed: 11,
            ..Default::default()
        });
        let fp = self_paired_fp(&f);
        let bucket = 3;
        // Fill the bucket with movable fingerprints.
        let movable: Vec<u16> = (1..1u16 << 12)
            .filter(|&c| c != fp && f.alt_bucket(bucket, c) != bucket)
            .take(2)
            .collect();
        for &c in &movable {
            f.insert_fingerprint(c, bucket).unwrap();
        }
        f.insert_fingerprint(fp, bucket)
            .expect("self-paired insert should relocate a movable victim");
        assert!(f.store().contains(bucket, fp));
        // The displaced victims must all still be reachable from their pair.
        for &c in &movable {
            let alt = f.alt_bucket(bucket, c);
            assert!(
                f.store().contains_pair(bucket, alt, c),
                "victim {c:#x} lost"
            );
        }
    }

    #[test]
    fn delete_removes_one_copy_at_a_time() {
        let mut f = CuckooFilter::new(small_params(5));
        f.insert(7).unwrap();
        f.insert(7).unwrap();
        assert_eq!(f.count(7), 2);
        assert!(f.delete(7));
        assert!(f.contains(7));
        assert!(f.delete(7));
        assert!(!f.contains(7));
        assert!(!f.delete(7));
        assert_eq!(f.len(), 0);
    }

    #[test]
    fn alt_bucket_is_an_involution() {
        let f = CuckooFilter::new(small_params(6));
        for key in 0..2000u64 {
            let (fp, b) = f.index_of(key);
            let alt = f.alt_bucket(b, fp);
            assert_eq!(
                f.alt_bucket(alt, fp),
                b,
                "xor mapping must be an involution"
            );
        }
    }

    #[test]
    fn alt_bucket_stays_an_involution_after_growth() {
        let mut f = CuckooFilter::new(small_params(6));
        f.grow();
        f.grow();
        for key in 0..2000u64 {
            let (fp, b) = f.index_of(key);
            assert!(b < f.num_buckets());
            let alt = f.alt_bucket(b, fp);
            assert!(alt < f.num_buckets());
            assert_eq!(f.alt_bucket(alt, fp), b);
            // The pair shares its growth bits: both members sit in the same
            // base-geometry block.
            assert_eq!(b / f.base_buckets(), alt / f.base_buckets());
        }
    }

    #[test]
    fn grow_preserves_membership_and_counts() {
        let mut f = CuckooFilter::new(small_params(8));
        for k in 0..3000u64 {
            f.insert(k).unwrap();
        }
        f.insert(77).unwrap(); // a duplicate copy, to check count preservation
        let len_before = f.len();
        f.grow();
        assert_eq!(f.num_buckets(), 2 << 10);
        assert_eq!(f.len(), len_before);
        for k in 0..3000u64 {
            assert!(f.contains(k), "false negative for {k} after growth");
        }
        assert_eq!(f.count(77), 2);
        // FPR improves (load factor halved): absent keys mostly rejected.
        let fps = (1_000_000..1_050_000u64).filter(|&k| f.contains(k)).count();
        assert!((fps as f64 / 50_000.0) < 0.01);
    }

    #[test]
    fn auto_grow_accepts_four_times_the_sized_capacity() {
        // Acceptance criterion: a filter sized for n takes 4n unique keys with zero
        // failures and zero false negatives when auto_grow is on.
        let n = 4000usize;
        let mut f = CuckooFilter::new(CuckooFilterParams::for_capacity(n, 12, 21).with_auto_grow());
        for k in 0..(4 * n) as u64 {
            f.insert(k)
                .unwrap_or_else(|e| panic!("auto-grow insert of {k} failed: {e}"));
        }
        assert!(f.growth_bits() >= 2, "4n keys must trigger ≥ 2 doublings");
        for k in 0..(4 * n) as u64 {
            assert!(f.contains(k), "false negative for {k} after auto-growth");
        }
    }

    #[test]
    fn contains_batch_matches_per_key_loop() {
        let mut f = CuckooFilter::new(small_params(9));
        for k in 0..3000u64 {
            f.insert(k).unwrap();
        }
        f.grow(); // the batch path must agree on grown geometry too
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 7 % 20_000).collect();
        let batch = f.contains_batch(&keys);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(batch[i], f.contains(k), "mismatch for key {k}");
        }
    }

    #[test]
    fn insert_after_delete_reuses_space() {
        let mut f = CuckooFilter::new(CuckooFilterParams {
            num_buckets: 8,
            entries_per_bucket: 2,
            fingerprint_bits: 8,
            seed: 9,
            ..Default::default()
        });
        let mut keys: Vec<u64> = (0..12).collect();
        for &k in &keys {
            // Fill to near capacity; ignore failures.
            let _ = f.insert(k);
        }
        let len_before = f.len();
        // Delete the first half that are present and re-insert fresh keys.
        keys.retain(|&k| f.contains(k));
        for &k in keys.iter().take(len_before / 2) {
            assert!(f.delete(k));
        }
        for nk in 100..(100 + (len_before / 2) as u64) {
            f.insert(nk).expect("freed space should be reusable");
        }
        assert_eq!(f.len(), len_before);
    }

    #[test]
    fn for_capacity_sizes_generously() {
        let p = CuckooFilterParams::for_capacity(10_000, 12, 0);
        assert!(p.num_buckets * p.entries_per_bucket >= 10_000);
        let mut f = CuckooFilter::new(p);
        for k in 0..10_000u64 {
            f.insert(k)
                .expect("sized-for capacity inserts must succeed");
        }
    }

    #[test]
    fn load_factor_and_len_track_insertions() {
        let mut f = CuckooFilter::new(small_params(7));
        assert!(f.is_empty());
        for k in 0..100u64 {
            f.insert(k).unwrap();
        }
        assert_eq!(f.len(), 100);
        assert!((f.load_factor() - 100.0 / f.capacity() as f64).abs() < 1e-12);
    }

    #[test]
    fn size_bits_matches_geometry() {
        let f = CuckooFilter::new(CuckooFilterParams {
            num_buckets: 1 << 8,
            fingerprint_bits: 9,
            ..Default::default()
        });
        assert_eq!(f.size_bits(), 256 * 4 * 9);
    }

    #[test]
    fn growth_stats_track_doublings() {
        let mut f = CuckooFilter::new(small_params(10));
        let stats = f.growth_stats();
        assert_eq!(stats.base_buckets, 1 << 10);
        assert_eq!(stats.expansion_factor(), 1);
        f.grow();
        f.grow();
        let stats = f.growth_stats();
        assert_eq!(stats.growth_bits, 2);
        assert_eq!(stats.current_buckets, 1 << 12);
        assert_eq!(stats.expansion_factor(), 4);
    }

    #[test]
    fn split_geometry_matches_a_grown_filter() {
        // A filter constructed with with_split_geometry must agree bucket-for-bucket
        // with one that started at the base size and grew — the property Algorithm 2
        // derived filters rely on.
        let mut grown = CuckooFilter::new(small_params(12));
        grown.grow();
        let derived = CuckooFilter::with_split_geometry(1 << 10, 1, small_params(12));
        assert_eq!(derived.num_buckets(), grown.num_buckets());
        for key in 0..2000u64 {
            assert_eq!(derived.index_of(key), grown.index_of(key));
            let (fp, b) = derived.index_of(key);
            assert_eq!(derived.alt_bucket(b, fp), grown.alt_bucket(b, fp));
        }
    }

    #[test]
    #[should_panic(expected = "max_kicks must be positive")]
    fn zero_max_kicks_is_rejected() {
        let _ = CuckooFilter::new(small_params(1).with_max_kicks(0));
    }

    #[test]
    fn max_kicks_bounds_the_kick_loop() {
        // With a kick budget of 1 the filter still works, just gives up earlier; the
        // recorded kick depths must respect the bound exactly.
        let telemetry = Telemetry::enabled();
        let mut f = CuckooFilter::new(small_params(31).with_max_kicks(1));
        f.attach_telemetry(&telemetry, &[]);
        let mut first_failure = None;
        for k in 0..f.capacity() as u64 {
            if f.insert(k).is_err() {
                first_failure = Some(k);
                break;
            }
        }
        assert!(
            first_failure.is_some(),
            "a 1-kick budget must fail before 100% load"
        );
        let depth = telemetry
            .snapshot()
            .histogram("cuckoo_kick_depth", &[("structure", "cuckoo_filter")])
            .cloned()
            .expect("kick depth series must exist");
        // Bounds are [0, 1, 2, ...]: nothing may land above the ≤1 bucket.
        assert_eq!(depth.counts[2..].iter().sum::<u64>(), 0);
        assert!(depth.count() > 0);
    }

    #[test]
    fn telemetry_counts_inserts_failures_grows_and_deletes() {
        let telemetry = Telemetry::enabled();
        let mut f = CuckooFilter::new(small_params(32));
        f.attach_telemetry(&telemetry, &[]);
        for k in 0..100u64 {
            f.insert(k).unwrap();
        }
        f.grow();
        assert!(f.delete(7));
        let b = f.entries_per_bucket();
        for _ in 0..2 * b {
            f.insert(999).unwrap();
        }
        assert!(f.insert(999).is_err(), "2b+1-th copy must fail");
        let labels = [("structure", "cuckoo_filter")];
        let snap = telemetry.snapshot();
        assert_eq!(
            snap.counter("cuckoo_inserts_total", &labels),
            Some(100 + 2 * b as u64)
        );
        assert_eq!(
            snap.counter("cuckoo_insert_failures_total", &labels),
            Some(1)
        );
        assert_eq!(
            snap.counter("cuckoo_pair_saturated_failfasts_total", &labels),
            Some(1)
        );
        assert_eq!(snap.counter("cuckoo_grows_total", &labels), Some(1));
        assert_eq!(snap.counter("cuckoo_deletes_total", &labels), Some(1));
        // Every successful non-fail-fast placement observed a kick depth.
        let depth = snap
            .histogram("cuckoo_kick_depth", &labels)
            .expect("kick depth series");
        assert_eq!(depth.count(), 100 + 2 * b as u64);
        // Detaching (disabled handle) stops recording without touching old series.
        f.attach_telemetry(&Telemetry::disabled(), &[]);
        f.insert(5000).unwrap();
        assert_eq!(
            telemetry
                .snapshot()
                .counter("cuckoo_inserts_total", &labels),
            Some(100 + 2 * b as u64)
        );
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        for storage in [StorageKind::Packed, StorageKind::Semisort] {
            let mut f = CuckooFilter::new(small_params(77).with_storage(storage).with_auto_grow());
            for k in 0..6000u64 {
                f.insert(k).unwrap();
            }
            for k in (0..6000u64).step_by(3) {
                assert!(f.delete(k));
            }
            let mut reloaded = CuckooFilter::from_snapshot_bytes(&f.to_snapshot_bytes()).unwrap();
            assert_eq!(reloaded.store(), f.store(), "{storage}: stores diverge");
            assert_eq!(reloaded.params(), f.params());
            assert_eq!(reloaded.growth_bits(), f.growth_bits());
            // Bit-identity must survive *post-restore mutation*: the RNG stream and
            // geometry continue exactly where the original left off.
            for k in 10_000..12_000u64 {
                assert_eq!(f.insert(k).is_ok(), reloaded.insert(k).is_ok());
            }
            for k in 0..14_000u64 {
                assert_eq!(f.contains(k), reloaded.contains(k), "{storage}: key {k}");
            }
            assert_eq!(
                reloaded.store(),
                f.store(),
                "{storage}: post-mutation drift"
            );
        }
    }

    #[test]
    fn snapshot_rejects_corruption_with_typed_errors() {
        let mut f = CuckooFilter::new(small_params(3));
        for k in 0..100u64 {
            f.insert(k).unwrap();
        }
        let img = f.to_snapshot_bytes();
        // Bit flip anywhere → checksum mismatch (or downstream typed error), no panic.
        let mut flipped = img.clone();
        flipped[img.len() / 2] ^= 0x10;
        assert!(matches!(
            CuckooFilter::from_snapshot_bytes(&flipped),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        assert!(matches!(
            CuckooFilter::from_snapshot_bytes(&img[..img.len() - 9]),
            Err(SnapshotError::Truncated) | Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn different_seeds_produce_different_layouts_same_semantics() {
        let mut a = CuckooFilter::new(small_params(100));
        let mut b = CuckooFilter::new(small_params(200));
        for k in 0..500u64 {
            a.insert(k).unwrap();
            b.insert(k).unwrap();
        }
        for k in 0..500u64 {
            assert!(a.contains(k) && b.contains(k));
        }
        // Layouts should differ (fingerprints under different salts).
        let differs = (0..500u64).any(|k| a.index_of(k) != b.index_of(k));
        assert!(differs);
    }
}
