//! Point-in-time occupancy and growth metrics shared across the whole filter stack.
//!
//! Originally written for the multiset experiments (§10.1–10.2, Figures 4–5), these
//! summaries are now the *state* half of the stack's observability story: every CCF
//! variant, the sharded service ([`ShardStats`] aggregates [`OccupancyStats`] and
//! [`GrowthStats`] per shard) and the join banks report through them. The *event* half
//! — kick-depth distributions, grow/rollback counters, latency histograms — lives in
//! the companion `ccf-telemetry` crate (see [`crate::instruments`] for the bundle the
//! cuckoo structures record into).
//!
//! [`ShardStats`]: https://docs.rs/ccf-shard

/// Summary of a growable cuckoo structure's resize history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrowthStats {
    /// Bucket count at construction.
    pub base_buckets: usize,
    /// Bucket count now.
    pub current_buckets: usize,
    /// Number of capacity doublings applied.
    pub growth_bits: u32,
}

impl GrowthStats {
    /// How many times larger than its base geometry the structure is (`2^growth_bits`).
    pub fn expansion_factor(&self) -> usize {
        1 << self.growth_bits
    }
}

/// Summary of bucket occupancy for a cuckoo structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancyStats {
    /// Number of buckets.
    pub num_buckets: usize,
    /// Entries per bucket (`b`).
    pub entries_per_bucket: usize,
    /// Total occupied entries.
    pub occupied: usize,
    /// Number of completely full buckets.
    pub full_buckets: usize,
    /// Number of completely empty buckets.
    pub empty_buckets: usize,
    /// Actual allocated bytes of the underlying storage (0 when the producer does not
    /// track allocation, e.g. stats built directly from raw counts). This is what
    /// makes the packed-vs-semisort memory saving observable rather than theoretical.
    pub heap_bytes: usize,
}

impl OccupancyStats {
    /// Build stats from an iterator of per-bucket occupancy counts. The result carries
    /// `heap_bytes: 0`; storage-aware producers attach their allocation via
    /// [`OccupancyStats::with_heap_bytes`].
    pub fn from_counts<I: IntoIterator<Item = usize>>(
        counts: I,
        entries_per_bucket: usize,
    ) -> Self {
        let mut num_buckets = 0;
        let mut occupied = 0;
        let mut full_buckets = 0;
        let mut empty_buckets = 0;
        for c in counts {
            num_buckets += 1;
            occupied += c;
            if c == entries_per_bucket {
                full_buckets += 1;
            }
            if c == 0 {
                empty_buckets += 1;
            }
        }
        Self {
            num_buckets,
            entries_per_bucket,
            occupied,
            full_buckets,
            empty_buckets,
            heap_bytes: 0,
        }
    }

    /// Attach the producer's actual allocated storage bytes.
    pub fn with_heap_bytes(mut self, heap_bytes: usize) -> Self {
        self.heap_bytes = heap_bytes;
        self
    }

    /// Stored bits per entry slot: `heap_bytes · 8 / capacity` (0 when allocation is
    /// untracked or the structure is empty of slots). The figure the semisort backend
    /// lowers by [`crate::semisort::bits_saved_per_entry`].
    pub fn stored_bits_per_entry(&self) -> f64 {
        if self.capacity() == 0 {
            0.0
        } else {
            self.heap_bytes as f64 * 8.0 / self.capacity() as f64
        }
    }

    /// Total slot capacity `m · b`.
    pub fn capacity(&self) -> usize {
        self.num_buckets * self.entries_per_bucket
    }

    /// Load factor β = occupied / capacity (0 for an empty structure).
    pub fn load_factor(&self) -> f64 {
        if self.capacity() == 0 {
            0.0
        } else {
            self.occupied as f64 / self.capacity() as f64
        }
    }

    /// Merge two occupancy summaries, e.g. per-shard stats into a service-wide total.
    /// The bucket/occupancy counts are exact field-wise sums over disjoint buckets.
    /// When the two sides use different `entries_per_bucket` (heterogeneous shards),
    /// the merged width is their max, so the merged [`OccupancyStats::capacity`] and
    /// [`OccupancyStats::load_factor`] are an upper bound / lower bound respectively —
    /// aggregators that need exact service-wide figures should sum the per-side
    /// `capacity()` values themselves (as the shard-layer `ShardStats` does).
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            num_buckets: self.num_buckets + other.num_buckets,
            entries_per_bucket: self.entries_per_bucket.max(other.entries_per_bucket),
            occupied: self.occupied + other.occupied,
            full_buckets: self.full_buckets + other.full_buckets,
            empty_buckets: self.empty_buckets + other.empty_buckets,
            heap_bytes: self.heap_bytes + other.heap_bytes,
        }
    }

    /// Fraction of buckets that are completely full.
    pub fn full_fraction(&self) -> f64 {
        if self.num_buckets == 0 {
            0.0
        } else {
            self.full_buckets as f64 / self.num_buckets as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_counts_aggregates_correctly() {
        let stats = OccupancyStats::from_counts(vec![0, 4, 2, 4, 1], 4);
        assert_eq!(stats.num_buckets, 5);
        assert_eq!(stats.occupied, 11);
        assert_eq!(stats.full_buckets, 2);
        assert_eq!(stats.empty_buckets, 1);
        assert_eq!(stats.capacity(), 20);
        assert!((stats.load_factor() - 0.55).abs() < 1e-12);
        assert!((stats.full_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_disjoint_bucket_counts() {
        let a = OccupancyStats::from_counts(vec![0, 4, 2], 4).with_heap_bytes(27);
        let b = OccupancyStats::from_counts(vec![4, 4, 0, 1], 4).with_heap_bytes(36);
        let m = a.merge(&b);
        assert_eq!(m.num_buckets, 7);
        assert_eq!(m.occupied, 6 + 9);
        assert_eq!(m.full_buckets, 3);
        assert_eq!(m.empty_buckets, 2);
        assert_eq!(m.heap_bytes, 63, "merge must sum per-side allocations");
        assert!((m.load_factor() - 15.0 / 28.0).abs() < 1e-12);
    }

    #[test]
    fn heap_bytes_expose_stored_bits_per_entry() {
        let stats = OccupancyStats::from_counts(vec![2; 16], 4);
        assert_eq!(stats.heap_bytes, 0, "raw counts carry no allocation info");
        assert_eq!(stats.stored_bits_per_entry(), 0.0);
        // 16 buckets × 4 slots backed by 144 bytes → 18 bits per slot (the packed
        // b = 4 figure: 16-bit lane + 2 counter bits).
        let stats = stats.with_heap_bytes(144);
        assert!((stats.stored_bits_per_entry() - 18.0).abs() < 1e-12);
    }

    #[test]
    fn empty_structure_has_zero_load() {
        let stats = OccupancyStats::from_counts(std::iter::empty(), 4);
        assert_eq!(stats.load_factor(), 0.0);
        assert_eq!(stats.full_fraction(), 0.0);
    }
}
