//! Fixed-capacity buckets of fingerprint entries.
//!
//! A cuckoo filter is "arranged as a fixed size array of entries ... an item is first
//! hashed to one of m candidate buckets. Each bucket contains b entries in which data
//! can be stored" (§4). An empty entry is represented by fingerprint 0, which is why
//! fingerprint derivation guarantees κ ≠ 0.

/// A bucket holding up to `b` key fingerprints. Fingerprint 0 marks an empty slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bucket {
    slots: Vec<u16>,
}

impl Bucket {
    /// Create an empty bucket with `b` slots.
    pub fn new(b: usize) -> Self {
        assert!(b > 0, "bucket must have at least one slot");
        Self { slots: vec![0; b] }
    }

    /// Number of slots (the `b` parameter).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|&&f| f != 0).count()
    }

    /// Whether the bucket has no occupied slots.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|&f| f == 0)
    }

    /// Whether every slot is occupied.
    pub fn is_full(&self) -> bool {
        self.slots.iter().all(|&f| f != 0)
    }

    /// Try to insert a fingerprint into a free slot. Returns `true` on success.
    ///
    /// # Panics
    /// Panics (debug) if `fp == 0`, which is reserved for empty slots.
    pub fn try_insert(&mut self, fp: u16) -> bool {
        debug_assert_ne!(fp, 0, "fingerprint 0 is reserved for empty slots");
        for slot in &mut self.slots {
            if *slot == 0 {
                *slot = fp;
                return true;
            }
        }
        false
    }

    /// Whether the bucket contains the fingerprint.
    pub fn contains(&self, fp: u16) -> bool {
        self.slots.contains(&fp)
    }

    /// Number of copies of `fp` in the bucket.
    pub fn count(&self, fp: u16) -> usize {
        self.slots.iter().filter(|&&f| f == fp).count()
    }

    /// Remove one copy of `fp`. Returns `true` if a copy was removed.
    pub fn remove_one(&mut self, fp: u16) -> bool {
        debug_assert_ne!(fp, 0);
        for slot in &mut self.slots {
            if *slot == fp {
                *slot = 0;
                return true;
            }
        }
        false
    }

    /// Empty `slot`, returning the fingerprint it held (0 if it was already empty).
    /// Used by capacity growth to move entries between buckets without the non-zero
    /// requirement of [`Bucket::swap`].
    pub fn take(&mut self, slot: usize) -> u16 {
        std::mem::take(&mut self.slots[slot])
    }

    /// Replace the fingerprint at `slot` with `fp`, returning the previous occupant.
    /// This is the "kick" primitive of cuckoo insertion.
    ///
    /// # Panics
    /// Panics if `slot >= b`.
    pub fn swap(&mut self, slot: usize, fp: u16) -> u16 {
        debug_assert_ne!(fp, 0);
        std::mem::replace(&mut self.slots[slot], fp)
    }

    /// Fingerprint stored at `slot` (0 if empty).
    pub fn get(&self, slot: usize) -> u16 {
        self.slots[slot]
    }

    /// Iterate over the occupied fingerprints.
    pub fn iter(&self) -> impl Iterator<Item = u16> + '_ {
        self.slots.iter().copied().filter(|&f| f != 0)
    }

    /// The raw slots, including empties (used by semi-sorting and serialization).
    pub fn slots(&self) -> &[u16] {
        &self.slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_until_full() {
        let mut b = Bucket::new(4);
        assert!(b.is_empty());
        for fp in 1..=4u16 {
            assert!(b.try_insert(fp));
        }
        assert!(b.is_full());
        assert_eq!(b.len(), 4);
        assert!(!b.try_insert(5));
    }

    #[test]
    fn contains_and_count() {
        let mut b = Bucket::new(4);
        b.try_insert(7);
        b.try_insert(7);
        b.try_insert(9);
        assert!(b.contains(7) && b.contains(9));
        assert!(!b.contains(8));
        assert_eq!(b.count(7), 2);
        assert_eq!(b.count(9), 1);
        assert_eq!(b.count(8), 0);
    }

    #[test]
    fn remove_one_removes_single_copy() {
        let mut b = Bucket::new(4);
        b.try_insert(3);
        b.try_insert(3);
        assert!(b.remove_one(3));
        assert_eq!(b.count(3), 1);
        assert!(b.remove_one(3));
        assert!(!b.remove_one(3));
        assert!(b.is_empty());
    }

    #[test]
    fn swap_returns_previous_occupant() {
        let mut b = Bucket::new(2);
        b.try_insert(10);
        let prev = b.swap(0, 20);
        assert_eq!(prev, 10);
        assert_eq!(b.get(0), 20);
        // Swapping an empty slot returns 0.
        let prev = b.swap(1, 30);
        assert_eq!(prev, 0);
    }

    #[test]
    fn take_empties_a_slot_and_returns_the_occupant() {
        let mut b = Bucket::new(2);
        b.try_insert(9);
        assert_eq!(b.take(0), 9);
        assert_eq!(b.take(0), 0, "taking an empty slot yields 0");
        assert!(b.is_empty());
    }

    #[test]
    fn iter_skips_empty_slots() {
        let mut b = Bucket::new(4);
        b.try_insert(5);
        b.try_insert(6);
        b.remove_one(5);
        let v: Vec<u16> = b.iter().collect();
        assert_eq!(v, vec![6]);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        let _ = Bucket::new(0);
    }
}
