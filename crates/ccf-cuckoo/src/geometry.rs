//! The split bucket geometry shared by every growable partial-key structure.
//!
//! Doubling a partial-key cuckoo structure is subtle: stored fingerprints κ cannot
//! reproduce the key-hash bits a larger table would normally consume. The split
//! geometry solves this by construction — the primary bucket's low
//! `log2(base_buckets)` bits always come from the key hash, the alternate mapping
//! ℓ′ = ℓ ⊕ h(κ) is confined to those low bits, and every capacity doubling appends
//! one high index bit drawn from an independent hash of the *fingerprint*
//! ([`ccf_hash::salted::purpose::GROWTH`]). Queries, inserts and migration can all
//! recompute the high bits from κ alone, so growth is a keyless O(m·b) remap.
//!
//! Bit-for-bit agreement on these formulas between a filter, its grown self, and any
//! filter *derived* from it (Algorithm 2 predicate filters) is load-bearing for the
//! no-false-negative guarantee. Centralizing them here is what keeps the cuckoo
//! substrate, the CCF variants in `ccf-core`, and their derived filters from ever
//! drifting apart.

use ccf_hash::{salted::purpose, HashFamily, SaltedHasher};

/// Bucket-index derivation for a structure that started at `base_buckets` (a power of
/// two) and has doubled `growth_bits` times. Cheap to copy; carries only masks and two
/// salted hashers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitGeometry {
    base_buckets: usize,
    base_mask: usize,
    growth_bits: u32,
    partial_hasher: SaltedHasher,
    growth_hasher: SaltedHasher,
}

impl SplitGeometry {
    /// Geometry for `base_buckets` buckets (rounded up to a power of two) after
    /// `growth_bits` doublings, drawing its hashers from `family` (the structure's
    /// hash family, so equal seeds give equal geometries).
    pub fn new(family: &HashFamily, base_buckets: usize, growth_bits: u32) -> Self {
        let base_buckets = base_buckets.next_power_of_two().max(1);
        Self {
            base_buckets,
            base_mask: base_buckets - 1,
            growth_bits,
            partial_hasher: family.hasher(purpose::PARTIAL_KEY),
            growth_hasher: family.hasher(purpose::GROWTH),
        }
    }

    /// Bucket count at construction (the key hash addresses only these).
    pub fn base_buckets(&self) -> usize {
        self.base_buckets
    }

    /// `base_buckets - 1`: the bits the key hash and the alternate xor may touch.
    pub fn base_mask(&self) -> usize {
        self.base_mask
    }

    /// Number of capacity doublings applied so far.
    pub fn growth_bits(&self) -> u32 {
        self.growth_bits
    }

    /// Total bucket count under this geometry: `base_buckets · 2^growth_bits`.
    pub fn num_buckets(&self) -> usize {
        self.base_buckets << self.growth_bits
    }

    /// The alternate bucket ℓ′ = ℓ ⊕ h(κ), with the xor confined to the base bits so
    /// a pair always shares its growth bits. An involution for any `bucket` in range.
    #[inline]
    pub fn alt_bucket(&self, bucket: usize, fp: u16) -> usize {
        bucket ^ (self.partial_hasher.hash_u64(u64::from(fp)) as usize & self.base_mask)
    }

    /// High-index offset contributed by the fingerprint's growth bits:
    /// `(G(κ) mod 2^growth_bits) · base_buckets`.
    #[inline]
    pub fn growth_offset(&self, fp: u16) -> usize {
        if self.growth_bits == 0 {
            return 0;
        }
        let bits =
            self.growth_hasher.hash_u64(u64::from(fp)) as usize & ((1 << self.growth_bits) - 1);
        bits * self.base_buckets
    }

    /// The primary bucket under this geometry, given the key's base bucket (its hash
    /// reduced to `base_buckets`).
    #[inline]
    pub fn home_bucket(&self, base_bucket: usize, fp: u16) -> usize {
        base_bucket + self.growth_offset(fp)
    }

    /// Bit `bit` of the fingerprint's growth-bit stream (bit `g` decides the move on
    /// the `g`-th doubling).
    #[inline]
    pub fn growth_bit(&self, fp: u16, bit: u32) -> bool {
        (self.growth_hasher.hash_u64(u64::from(fp)) >> bit) & 1 == 1
    }

    /// Combine derived base bits with the growth block of a reference index — e.g. a
    /// chain hop that rewrites only the base bits while staying inside the
    /// fingerprint's growth block.
    #[inline]
    pub fn rebase(&self, base_bits: usize, reference: usize) -> usize {
        (base_bits & self.base_mask) | (reference & !self.base_mask)
    }

    /// Record one capacity doubling.
    pub fn record_doubling(&mut self) {
        self.growth_bits += 1;
    }
}

/// Cap on consecutive doublings a single auto-growing insertion may trigger. One
/// doubling nearly always suffices (it halves the load factor); the cap only guards
/// against runaway allocation on pathological inputs.
pub const MAX_GROWTHS_PER_INSERT: usize = 8;

/// The auto-grow retry policy shared by the growable structures: run `attempt`; on
/// failure (and only when `auto_grow` is set), repeatedly check `growth_can_help`,
/// `grow`, and re-`attempt`, up to [`MAX_GROWTHS_PER_INSERT`] doublings. The last
/// failure is returned when growth is off, cannot help (e.g. a bucket pair saturated
/// with copies of one fingerprint, which shares both buckets at every size), or the
/// retry budget runs out.
pub fn grow_and_retry<S, T, E>(
    state: &mut S,
    auto_grow: bool,
    mut attempt: impl FnMut(&mut S) -> Result<T, E>,
    mut growth_can_help: impl FnMut(&S) -> bool,
    mut grow: impl FnMut(&mut S),
) -> Result<T, E> {
    match attempt(state) {
        Err(failure) if auto_grow => {
            let mut last = failure;
            for _ in 0..MAX_GROWTHS_PER_INSERT {
                if !growth_can_help(state) {
                    return Err(last);
                }
                grow(state);
                match attempt(state) {
                    Ok(outcome) => return Ok(outcome),
                    Err(failure) => last = failure,
                }
            }
            Err(last)
        }
        other => other,
    }
}

/// Migrate `Vec`-bucket storage across one doubling: for each entry in the lower half
/// (its fingerprint given by `fp_of`), either keep it or move it up by the old bucket
/// count according to its growth bit. The buckets must already be resized to twice
/// `old_buckets`; `bit` is the doubling being applied (the geometry's `growth_bits`
/// *before* [`SplitGeometry::record_doubling`]). The remap cannot fail.
pub fn split_buckets<E>(
    geometry: &SplitGeometry,
    buckets: &mut [Vec<E>],
    old_buckets: usize,
    bit: u32,
    fp_of: impl Fn(&E) -> u16,
) {
    for bucket in 0..old_buckets {
        let entries = std::mem::take(&mut buckets[bucket]);
        for entry in entries {
            let dst = if geometry.growth_bit(fp_of(&entry), bit) {
                bucket + old_buckets
            } else {
                bucket
            };
            buckets[dst].push(entry);
        }
    }
}

/// Best-effort prefetch of `slice[index]` into L1. A pure performance hint — out-of-
/// range indices are ignored, nothing is dereferenced, and the call compiles to a
/// no-op on targets without a prefetch intrinsic. This is the one place in the crate
/// that needs `unsafe`: `_mm_prefetch` is an intrinsic, but it performs no memory
/// access (architecturally it cannot fault), so any address — even a dangling one —
/// is sound to pass.
// SAFETY: the pointer arithmetic stays in bounds (guarded by the length check) and
// `_mm_prefetch` never dereferences — it is architecturally incapable of faulting,
// so passing any address, even dangling, is sound.
#[inline(always)]
#[allow(unsafe_code)]
pub fn prefetch_index<T>(slice: &[T], index: usize) {
    #[cfg(target_arch = "x86_64")]
    if index < slice.len() {
        // In-bounds pointer arithmetic (guarded above); the prefetch itself takes any
        // address without dereferencing it.
        unsafe {
            let ptr = slice.as_ptr().add(index);
            core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(ptr.cast());
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (slice, index);
}

/// Chunked three-pass batch-probe driver shared by every batched query path: derive
/// the `(κ, ℓ, ℓ′)` triples of a chunk into stack buffers (hash-only pass), issue
/// best-effort `prefetch` hints for every bucket the chunk will touch (prefetch pass),
/// then run `probe` over the triples (probe pass). The split keeps the independent
/// hashing work out of the dependency chain of the bucket loads and lets a whole
/// chunk's cache-line fills be in flight before the first probe executes — the win
/// grows with the structure (DRAM-resident buckets) — and no per-key heap traffic is
/// added. Results are in key order, one `bool` per key.
///
/// `prefetch` receives each bucket index of the pair; implementations forward to
/// [`prefetch_index`] over their storage (or do nothing — the driver's correctness
/// never depends on it).
pub fn probe_chunked(
    keys: &[u64],
    mut derive: impl FnMut(u64) -> (u16, usize, usize),
    mut prefetch: impl FnMut(usize),
    mut probe: impl FnMut(u16, usize, usize) -> bool,
) -> Vec<bool> {
    const CHUNK: usize = 64;
    let mut out = Vec::with_capacity(keys.len());
    let mut fps = [0u16; CHUNK];
    let mut primary = [0usize; CHUNK];
    let mut alt = [0usize; CHUNK];
    for chunk in keys.chunks(CHUNK) {
        for (i, &key) in chunk.iter().enumerate() {
            let (fp, l, l_alt) = derive(key);
            fps[i] = fp;
            primary[i] = l;
            alt[i] = l_alt;
        }
        for i in 0..chunk.len() {
            prefetch(primary[i]);
            if alt[i] != primary[i] {
                prefetch(alt[i]);
            }
        }
        for i in 0..chunk.len() {
            out.push(probe(fps[i], primary[i], alt[i]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry(growth_bits: u32) -> SplitGeometry {
        SplitGeometry::new(&HashFamily::new(42), 256, growth_bits)
    }

    #[test]
    fn alt_bucket_is_an_involution_within_the_growth_block() {
        for g in [0u32, 1, 3] {
            let geom = geometry(g);
            for fp in 1..2000u16 {
                let home = geom.home_bucket(fp as usize % 256, fp);
                let alt = geom.alt_bucket(home, fp);
                assert!(alt < geom.num_buckets());
                assert_eq!(geom.alt_bucket(alt, fp), home);
                assert_eq!(home / 256, alt / 256, "pair must share its growth block");
            }
        }
    }

    #[test]
    fn growth_offset_extends_by_one_bit_per_doubling() {
        let before = geometry(2);
        let mut after = before;
        after.record_doubling();
        for fp in 1..2000u16 {
            let extra = after.growth_offset(fp) - before.growth_offset(fp);
            let expected = if before.growth_bit(fp, 2) {
                before.num_buckets()
            } else {
                0
            };
            assert_eq!(extra, expected, "fp {fp}");
        }
    }

    #[test]
    fn split_buckets_moves_entries_by_their_growth_bit() {
        let geom = geometry(0);
        let mut buckets: Vec<Vec<u16>> = vec![Vec::new(); 512];
        for fp in 1..300u16 {
            buckets[fp as usize % 256].push(fp);
        }
        split_buckets(&geom, &mut buckets, 256, 0, |&fp| fp);
        for (idx, bucket) in buckets.iter().enumerate() {
            for &fp in bucket {
                let expected = (fp as usize % 256) + usize::from(geom.growth_bit(fp, 0)) * 256;
                assert_eq!(idx, expected, "fp {fp} landed in the wrong half");
            }
        }
    }

    #[test]
    fn probe_chunked_visits_every_key_in_order() {
        let keys: Vec<u64> = (0..1000).collect();
        let mut derived = Vec::new();
        let mut prefetched = 0usize;
        let out = probe_chunked(
            &keys,
            |k| {
                derived.push(k);
                (1, k as usize, k as usize + 1)
            },
            |_| prefetched += 1,
            |_, l, _| l % 3 == 0,
        );
        assert_eq!(derived, keys);
        assert_eq!(out.len(), keys.len());
        // Every pair here is distinct (ℓ′ = ℓ + 1), so both buckets get a hint.
        assert_eq!(prefetched, 2 * keys.len());
        for (i, &hit) in out.iter().enumerate() {
            assert_eq!(hit, i % 3 == 0);
        }
    }

    #[test]
    fn probe_chunked_hints_self_paired_buckets_once() {
        let keys: Vec<u64> = (0..10).collect();
        let mut prefetched = 0usize;
        let out = probe_chunked(
            &keys,
            |k| (1, k as usize, k as usize),
            |_| prefetched += 1,
            |_, _, _| true,
        );
        assert_eq!(out.len(), keys.len());
        assert_eq!(prefetched, keys.len(), "ℓ′ == ℓ must not be hinted twice");
    }

    #[test]
    fn prefetch_index_ignores_out_of_range() {
        // Must not panic or fault for any index, including past the end and on an
        // empty slice — it is a hint, not an access.
        let data = [1u64, 2, 3];
        prefetch_index(&data, 0);
        prefetch_index(&data, 2);
        prefetch_index(&data, 3);
        prefetch_index(&data, usize::MAX);
        prefetch_index::<u64>(&[], 0);
    }

    #[test]
    fn grow_and_retry_respects_policy_and_budget() {
        // auto_grow off: one attempt, no growth.
        let mut calls = (0u32, 0u32); // (attempts, grows)
        let r: Result<(), ()> = grow_and_retry(
            &mut calls,
            false,
            |c| {
                c.0 += 1;
                Err(())
            },
            |_| true,
            |c| c.1 += 1,
        );
        assert!(r.is_err());
        assert_eq!(calls, (1, 0));

        // auto_grow on but growth cannot help: one attempt, no growth.
        let mut calls = (0u32, 0u32);
        let r: Result<(), ()> = grow_and_retry(
            &mut calls,
            true,
            |c| {
                c.0 += 1;
                Err(())
            },
            |_| false,
            |c| c.1 += 1,
        );
        assert!(r.is_err());
        assert_eq!(calls, (1, 0));

        // Succeeds on the retry after one doubling.
        let mut calls = (0u32, 0u32);
        let r: Result<(), ()> = grow_and_retry(
            &mut calls,
            true,
            |c| {
                c.0 += 1;
                if c.1 > 0 {
                    Ok(())
                } else {
                    Err(())
                }
            },
            |_| true,
            |c| c.1 += 1,
        );
        assert!(r.is_ok());
        assert_eq!(calls, (2, 1));

        // Never succeeds: the retry budget bounds the doublings.
        let mut calls = (0u32, 0u32);
        let r: Result<(), ()> = grow_and_retry(
            &mut calls,
            true,
            |c| {
                c.0 += 1;
                Err(())
            },
            |_| true,
            |c| c.1 += 1,
        );
        assert!(r.is_err());
        assert_eq!(calls.1, MAX_GROWTHS_PER_INSERT as u32);
    }

    #[test]
    fn rebase_keeps_the_reference_block() {
        let geom = geometry(2);
        let reference = 256 * 3 + 17; // block 3
        let hopped = geom.rebase(0xABCD, reference);
        assert_eq!(hopped / 256, 3);
        assert_eq!(hopped % 256, 0xABCD % 256);
    }
}
