//! The pluggable bucket-storage abstraction behind [`crate::CuckooFilter`].
//!
//! Every filter operation touches bucket storage through exactly one interface:
//! [`BucketStore`], implemented by two backends with identical *membership* semantics
//! but different representations:
//!
//! * [`PackedBuckets`] — the default: four 16-bit fingerprint lanes per word, SWAR
//!   whole-bucket compares, slot order preserved across mutations.
//! * [`SemisortBuckets`] — the §4.2 semi-sorting encoding made operational: each
//!   bucket's fingerprints are kept canonically sorted and their 4-bit prefixes are
//!   stored as a single combinatorial rank, saving
//!   [`crate::semisort::bits_saved_per_entry`]`(b)` bits per slot (1 bit at `b = 4`).
//!
//! The backends differ in *slot arrangement* (packed preserves insertion slots,
//! semisort canonicalizes to sorted order), but every pair-level question a cuckoo
//! filter asks — does this bucket pair hold κ, how many copies, remove one copy —
//! answers identically, which is why a filter can swap representation without changing
//! observable behavior as long as its insert paths succeed. The choice is a runtime
//! [`StorageKind`] knob (an enum dispatch, [`AnyBuckets`]) rather than a generic
//! parameter so one `CuckooFilter` type serves both backends and the builder facade
//! can select storage from configuration.

use crate::packed::PackedBuckets;
use crate::semisort::SemisortBuckets;

/// Which bucket-storage backend a filter uses.
///
/// Defaults to [`StorageKind::Packed`]. [`StorageKind::from_env`] lets a test harness
/// flip the whole suite to the compressed backend via the `CCF_STORAGE` environment
/// variable; parameter-struct `Default`s consult it so the CI storage matrix needs no
/// per-test plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageKind {
    /// Bit-packed 16-bit lanes with SWAR probes ([`PackedBuckets`]) — the default.
    #[default]
    Packed,
    /// Semi-sorted buckets with rank-encoded 4-bit prefixes ([`SemisortBuckets`]),
    /// saving [`crate::semisort::bits_saved_per_entry`]`(b)` stored bits per slot.
    /// Requires `entries_per_bucket ≤` [`MAX_SEMISORT_ENTRIES`].
    Semisort,
}

/// Widest bucket the semisort backend supports: the rank decode table has
/// C(15 + b, b) entries, which stays cache-friendly up to `b = 8` (490 314 ranks,
/// the paper's largest evaluated bucket) and grows combinatorially beyond it.
pub const MAX_SEMISORT_ENTRIES: usize = 8;

/// An unrecognized bucket-storage name (from `CCF_STORAGE` or a config string).
///
/// Produced by [`StorageKind::try_from_env`] and `StorageKind::from_str` so that
/// startup paths (builders, daemons) can reject a typo'd backend selection with a
/// typed error instead of silently serving from the default backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownStorageKind {
    /// The rejected spelling.
    pub value: String,
}

impl std::fmt::Display for UnknownStorageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unrecognized storage backend {:?}; expected \"packed\", \"semisort\" or \
             \"compressed\"",
            self.value
        )
    }
}

impl std::error::Error for UnknownStorageKind {}

impl std::str::FromStr for StorageKind {
    type Err = UnknownStorageKind;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "packed" => Ok(StorageKind::Packed),
            "semisort" | "compressed" => Ok(StorageKind::Semisort),
            other => Err(UnknownStorageKind {
                value: other.to_string(),
            }),
        }
    }
}

impl StorageKind {
    /// Resolve the backend from the `CCF_STORAGE` environment variable:
    /// `semisort` (or `compressed`) selects [`StorageKind::Semisort`]; anything else —
    /// including unset — selects [`StorageKind::Packed`]. Read once and cached, so a
    /// process cannot observe a mid-run flip.
    ///
    /// This is the *lenient* resolution used by parameter-struct `Default`s, which
    /// must be infallible; startup paths that can report errors (the `CcfBuilder`
    /// facade, the `ccf-service` daemon) should call [`StorageKind::try_from_env`]
    /// instead, which rejects unrecognized values rather than silently serving from
    /// the packed default.
    pub fn from_env() -> Self {
        static KIND: std::sync::OnceLock<StorageKind> = std::sync::OnceLock::new();
        *KIND.get_or_init(|| {
            Self::resolve_env_value(std::env::var("CCF_STORAGE").ok().as_deref())
                .unwrap_or_default()
        })
    }

    /// Strict form of [`StorageKind::from_env`]: an *unset* `CCF_STORAGE` still
    /// defaults to [`StorageKind::Packed`], but a set-and-unrecognized value is a
    /// typed [`UnknownStorageKind`] error instead of a silent fallback. Not cached —
    /// startup paths call this once and either abort or proceed.
    pub fn try_from_env() -> Result<Self, UnknownStorageKind> {
        Self::resolve_env_value(std::env::var("CCF_STORAGE").ok().as_deref())
    }

    /// The pure resolution rule behind [`StorageKind::try_from_env`], taking the
    /// environment value explicitly so both legs are unit-testable without mutating
    /// process-global environment state.
    pub fn resolve_env_value(value: Option<&str>) -> Result<Self, UnknownStorageKind> {
        match value {
            None | Some("") => Ok(StorageKind::default()),
            Some(v) => v.parse(),
        }
    }

    /// Stable one-byte encoding for snapshot images (the enum's declaration order is
    /// not a wire contract; this is).
    pub fn tag(self) -> u8 {
        match self {
            StorageKind::Packed => 0,
            StorageKind::Semisort => 1,
        }
    }

    /// Inverse of [`StorageKind::tag`]; `None` for bytes no release has written.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(StorageKind::Packed),
            1 => Some(StorageKind::Semisort),
            _ => None,
        }
    }
}

impl std::fmt::Display for StorageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageKind::Packed => write!(f, "packed"),
            StorageKind::Semisort => write!(f, "semisort"),
        }
    }
}

/// Why a raw-word storage image could not be imported. Every variant names the exact
/// structural inconsistency, so snapshot loaders can distinguish a truncated file from
/// a counter that disagrees with the words it summarizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreImportError {
    /// The word array's length does not match the bucket geometry.
    WordLenMismatch {
        /// Words required by `num_buckets · words_per_bucket` (plus padding, if any).
        expected: usize,
        /// Words supplied.
        got: usize,
    },
    /// The occupancy-counter array's length does not equal the bucket count.
    CountLenMismatch {
        /// `num_buckets`.
        expected: usize,
        /// Counters supplied.
        got: usize,
    },
    /// A per-bucket counter exceeds the bucket's slot capacity.
    CountOutOfRange {
        /// The offending bucket index.
        bucket: usize,
        /// The counter value.
        got: u8,
        /// Slots per bucket.
        max: usize,
    },
    /// A counter disagrees with the occupancy derived from the raw words themselves
    /// (a corrupted image whose lengths happen to line up).
    OccupancyMismatch {
        /// The first disagreeing bucket.
        bucket: usize,
        /// The stored counter.
        stored: usize,
        /// Occupancy recounted from the words.
        derived: usize,
    },
    /// `entries_per_bucket` is outside the backend's supported range.
    UnsupportedBucketWidth {
        /// The rejected width.
        entries_per_bucket: usize,
    },
}

impl std::fmt::Display for StoreImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreImportError::WordLenMismatch { expected, got } => {
                write!(
                    f,
                    "storage image has {got} words, geometry needs {expected}"
                )
            }
            StoreImportError::CountLenMismatch { expected, got } => {
                write!(f, "storage image has {got} counters for {expected} buckets")
            }
            StoreImportError::CountOutOfRange { bucket, got, max } => write!(
                f,
                "bucket {bucket} claims {got} occupied slots but holds at most {max}"
            ),
            StoreImportError::OccupancyMismatch {
                bucket,
                stored,
                derived,
            } => write!(
                f,
                "bucket {bucket} counter says {stored} occupied slots, raw words say {derived}"
            ),
            StoreImportError::UnsupportedBucketWidth { entries_per_bucket } => write!(
                f,
                "entries_per_bucket {entries_per_bucket} is outside the backend's supported range"
            ),
        }
    }
}

impl std::error::Error for StoreImportError {}

/// The storage interface a cuckoo filter drives: insert/kick (`try_insert`, `swap`),
/// growth remap (`take`, `extend_buckets`), deletion (`remove_one`), the probe kernel
/// (`prefetch`, `contains_pair`) and occupancy/size accounting.
///
/// # Slot semantics
///
/// Slot indices `0..entries_per_bucket` address a bucket's entries, but *which*
/// fingerprint a given index holds is backend-defined: [`PackedBuckets`] preserves
/// physical slots across mutations, while [`SemisortBuckets`] re-canonicalizes every
/// bucket to `(prefix, remainder)`-sorted order (empties first). Callers may rely on
/// slot indices only within the span between two mutations of that bucket — exactly
/// how the kick loop and the growth remap use them. All *value*-level operations
/// (`contains`, `count`, `remove_one`) are representation-independent.
pub trait BucketStore {
    /// Number of buckets.
    fn num_buckets(&self) -> usize;
    /// Slots per bucket (the `b` parameter).
    fn entries_per_bucket(&self) -> usize;
    /// Total occupied slots — O(1), maintained not scanned.
    fn occupied(&self) -> usize;
    /// Occupied slots in `bucket` — O(1).
    fn bucket_len(&self, bucket: usize) -> usize;
    /// Whether every slot of `bucket` is occupied — O(1).
    fn is_full(&self, bucket: usize) -> bool;
    /// Whether `bucket` has no occupied slots — O(1).
    fn is_bucket_empty(&self, bucket: usize) -> bool;
    /// Per-bucket occupancy counters, one byte per bucket, for
    /// [`crate::OccupancyStats`] aggregation.
    fn counts(&self) -> &[u8];
    /// Best-effort prefetch of `bucket`'s backing words (the batch kernel's prefetch
    /// pass); a pure performance hint.
    fn prefetch(&self, bucket: usize);
    /// Fingerprint stored at `slot` of `bucket` (0 if empty).
    fn get(&self, bucket: usize, slot: usize) -> u16;
    /// Insert `fp` into a free slot of `bucket`; `false` if the bucket is full.
    fn try_insert(&mut self, bucket: usize, fp: u16) -> bool;
    /// Whether `bucket` holds `fp`.
    fn contains(&self, bucket: usize, fp: u16) -> bool;
    /// Whether either bucket of a candidate pair holds `fp` — the whole-pair
    /// membership probe.
    fn contains_pair(&self, bucket: usize, alt: usize, fp: u16) -> bool;
    /// Number of copies of `fp` in `bucket`.
    fn count(&self, bucket: usize, fp: u16) -> usize;
    /// Remove one copy of `fp` from `bucket`; `true` if a copy was removed.
    fn remove_one(&mut self, bucket: usize, fp: u16) -> bool;
    /// Empty `slot` of `bucket`, returning the fingerprint it held (0 if empty) — the
    /// growth remap's move primitive.
    fn take(&mut self, bucket: usize, slot: usize) -> u16;
    /// Replace the fingerprint at `slot` of `bucket` with `fp`, returning the previous
    /// occupant — the kick primitive.
    fn swap(&mut self, bucket: usize, slot: usize, fp: u16) -> u16;
    /// The slots of `bucket` including empties, in the backend's slot order.
    fn bucket_slots(&self, bucket: usize) -> Vec<u16>;
    /// Append `extra` empty buckets (capacity doubling passes `extra == num_buckets`).
    fn extend_buckets(&mut self, extra: usize);
    /// Recount occupancy from the raw representation, bypassing the maintained
    /// counters (drift tests only).
    fn recount(&self) -> (usize, Vec<usize>);
    /// Actual allocated bytes of the bucket storage (backing words plus occupancy
    /// counters; excludes constant-size shared metadata such as the semisort decode
    /// table, which does not scale with the filter).
    fn heap_bytes(&self) -> usize;
}

/// Runtime-dispatched bucket storage: the concrete backend behind a
/// [`crate::CuckooFilter`], selected by [`StorageKind`] at construction.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyBuckets {
    /// The default SWAR-probed packed layout.
    Packed(PackedBuckets),
    /// The semisort-compressed layout.
    Semisort(SemisortBuckets),
}

impl AnyBuckets {
    /// Create empty storage of the chosen backend.
    ///
    /// # Panics
    /// Panics if `entries_per_bucket` is outside the chosen backend's supported range
    /// (see [`PackedBuckets::new`] and [`SemisortBuckets::new`]).
    pub fn new(kind: StorageKind, num_buckets: usize, entries_per_bucket: usize) -> Self {
        match kind {
            StorageKind::Packed => {
                AnyBuckets::Packed(PackedBuckets::new(num_buckets, entries_per_bucket))
            }
            StorageKind::Semisort => {
                AnyBuckets::Semisort(SemisortBuckets::new(num_buckets, entries_per_bucket))
            }
        }
    }

    /// Which backend this storage is.
    pub fn kind(&self) -> StorageKind {
        match self {
            AnyBuckets::Packed(_) => StorageKind::Packed,
            AnyBuckets::Semisort(_) => StorageKind::Semisort,
        }
    }

    /// The backing words of the whole structure, in bucket order — the zero-copy
    /// snapshot export. Together with [`BucketStore::counts`] (and the geometry the
    /// caller already knows) this is the *complete* mutable state of either backend:
    /// [`AnyBuckets::from_raw_parts`] rebuilds a bit-identical store from it.
    pub fn raw_words(&self) -> &[u64] {
        match self {
            AnyBuckets::Packed(s) => s.raw_words(),
            AnyBuckets::Semisort(s) => s.raw_words(),
        }
    }

    /// Rebuild storage from a raw image captured by [`AnyBuckets::raw_words`] and
    /// [`BucketStore::counts`]. Validates lengths, per-bucket counter ranges, and that
    /// the counters agree with an occupancy recount of the words themselves, so a
    /// corrupted image is a typed [`StoreImportError`] — never a store that probes
    /// incorrectly later.
    pub fn from_raw_parts(
        kind: StorageKind,
        num_buckets: usize,
        entries_per_bucket: usize,
        words: Vec<u64>,
        counts: Vec<u8>,
    ) -> Result<Self, StoreImportError> {
        match kind {
            StorageKind::Packed => {
                PackedBuckets::from_raw_parts(num_buckets, entries_per_bucket, words, counts)
                    .map(AnyBuckets::Packed)
            }
            StorageKind::Semisort => {
                SemisortBuckets::from_raw_parts(num_buckets, entries_per_bucket, words, counts)
                    .map(AnyBuckets::Semisort)
            }
        }
    }
}

/// Delegate every [`BucketStore`] method to the active backend.
macro_rules! dispatch {
    ($self:ident, $s:ident => $e:expr) => {
        match $self {
            AnyBuckets::Packed($s) => $e,
            AnyBuckets::Semisort($s) => $e,
        }
    };
}

impl BucketStore for AnyBuckets {
    #[inline]
    fn num_buckets(&self) -> usize {
        dispatch!(self, s => s.num_buckets())
    }
    #[inline]
    fn entries_per_bucket(&self) -> usize {
        dispatch!(self, s => s.entries_per_bucket())
    }
    #[inline]
    fn occupied(&self) -> usize {
        dispatch!(self, s => s.occupied())
    }
    #[inline]
    fn bucket_len(&self, bucket: usize) -> usize {
        dispatch!(self, s => s.bucket_len(bucket))
    }
    #[inline]
    fn is_full(&self, bucket: usize) -> bool {
        dispatch!(self, s => s.is_full(bucket))
    }
    #[inline]
    fn is_bucket_empty(&self, bucket: usize) -> bool {
        dispatch!(self, s => s.is_bucket_empty(bucket))
    }
    #[inline]
    fn counts(&self) -> &[u8] {
        dispatch!(self, s => s.counts())
    }
    #[inline]
    fn prefetch(&self, bucket: usize) {
        dispatch!(self, s => s.prefetch(bucket))
    }
    #[inline]
    fn get(&self, bucket: usize, slot: usize) -> u16 {
        dispatch!(self, s => s.get(bucket, slot))
    }
    #[inline]
    fn try_insert(&mut self, bucket: usize, fp: u16) -> bool {
        dispatch!(self, s => s.try_insert(bucket, fp))
    }
    #[inline]
    fn contains(&self, bucket: usize, fp: u16) -> bool {
        dispatch!(self, s => s.contains(bucket, fp))
    }
    #[inline]
    fn contains_pair(&self, bucket: usize, alt: usize, fp: u16) -> bool {
        dispatch!(self, s => s.contains_pair(bucket, alt, fp))
    }
    #[inline]
    fn count(&self, bucket: usize, fp: u16) -> usize {
        dispatch!(self, s => s.count(bucket, fp))
    }
    #[inline]
    fn remove_one(&mut self, bucket: usize, fp: u16) -> bool {
        dispatch!(self, s => s.remove_one(bucket, fp))
    }
    #[inline]
    fn take(&mut self, bucket: usize, slot: usize) -> u16 {
        dispatch!(self, s => s.take(bucket, slot))
    }
    #[inline]
    fn swap(&mut self, bucket: usize, slot: usize, fp: u16) -> u16 {
        dispatch!(self, s => s.swap(bucket, slot, fp))
    }
    #[inline]
    fn bucket_slots(&self, bucket: usize) -> Vec<u16> {
        dispatch!(self, s => s.bucket_slots(bucket))
    }
    #[inline]
    fn extend_buckets(&mut self, extra: usize) {
        dispatch!(self, s => s.extend_buckets(extra))
    }
    fn recount(&self) -> (usize, Vec<usize>) {
        dispatch!(self, s => s.recount())
    }
    fn heap_bytes(&self) -> usize {
        dispatch!(self, s => s.heap_bytes())
    }
}

impl BucketStore for PackedBuckets {
    #[inline]
    fn num_buckets(&self) -> usize {
        PackedBuckets::num_buckets(self)
    }
    #[inline]
    fn entries_per_bucket(&self) -> usize {
        PackedBuckets::entries_per_bucket(self)
    }
    #[inline]
    fn occupied(&self) -> usize {
        PackedBuckets::occupied(self)
    }
    #[inline]
    fn bucket_len(&self, bucket: usize) -> usize {
        PackedBuckets::bucket_len(self, bucket)
    }
    #[inline]
    fn is_full(&self, bucket: usize) -> bool {
        PackedBuckets::is_full(self, bucket)
    }
    #[inline]
    fn is_bucket_empty(&self, bucket: usize) -> bool {
        PackedBuckets::is_bucket_empty(self, bucket)
    }
    #[inline]
    fn counts(&self) -> &[u8] {
        PackedBuckets::counts(self)
    }
    #[inline]
    fn prefetch(&self, bucket: usize) {
        PackedBuckets::prefetch(self, bucket)
    }
    #[inline]
    fn get(&self, bucket: usize, slot: usize) -> u16 {
        PackedBuckets::get(self, bucket, slot)
    }
    #[inline]
    fn try_insert(&mut self, bucket: usize, fp: u16) -> bool {
        PackedBuckets::try_insert(self, bucket, fp)
    }
    #[inline]
    fn contains(&self, bucket: usize, fp: u16) -> bool {
        PackedBuckets::contains(self, bucket, fp)
    }
    #[inline]
    fn contains_pair(&self, bucket: usize, alt: usize, fp: u16) -> bool {
        PackedBuckets::contains_pair(self, bucket, alt, fp)
    }
    #[inline]
    fn count(&self, bucket: usize, fp: u16) -> usize {
        PackedBuckets::count(self, bucket, fp)
    }
    #[inline]
    fn remove_one(&mut self, bucket: usize, fp: u16) -> bool {
        PackedBuckets::remove_one(self, bucket, fp)
    }
    #[inline]
    fn take(&mut self, bucket: usize, slot: usize) -> u16 {
        PackedBuckets::take(self, bucket, slot)
    }
    #[inline]
    fn swap(&mut self, bucket: usize, slot: usize, fp: u16) -> u16 {
        PackedBuckets::swap(self, bucket, slot, fp)
    }
    #[inline]
    fn bucket_slots(&self, bucket: usize) -> Vec<u16> {
        PackedBuckets::bucket_slots(self, bucket)
    }
    #[inline]
    fn extend_buckets(&mut self, extra: usize) {
        PackedBuckets::extend_buckets(self, extra)
    }
    fn recount(&self) -> (usize, Vec<usize>) {
        PackedBuckets::recount(self)
    }
    fn heap_bytes(&self) -> usize {
        PackedBuckets::heap_bytes(self)
    }
}

impl BucketStore for SemisortBuckets {
    #[inline]
    fn num_buckets(&self) -> usize {
        SemisortBuckets::num_buckets(self)
    }
    #[inline]
    fn entries_per_bucket(&self) -> usize {
        SemisortBuckets::entries_per_bucket(self)
    }
    #[inline]
    fn occupied(&self) -> usize {
        SemisortBuckets::occupied(self)
    }
    #[inline]
    fn bucket_len(&self, bucket: usize) -> usize {
        SemisortBuckets::bucket_len(self, bucket)
    }
    #[inline]
    fn is_full(&self, bucket: usize) -> bool {
        SemisortBuckets::is_full(self, bucket)
    }
    #[inline]
    fn is_bucket_empty(&self, bucket: usize) -> bool {
        SemisortBuckets::is_bucket_empty(self, bucket)
    }
    #[inline]
    fn counts(&self) -> &[u8] {
        SemisortBuckets::counts(self)
    }
    #[inline]
    fn prefetch(&self, bucket: usize) {
        SemisortBuckets::prefetch(self, bucket)
    }
    #[inline]
    fn get(&self, bucket: usize, slot: usize) -> u16 {
        SemisortBuckets::get(self, bucket, slot)
    }
    #[inline]
    fn try_insert(&mut self, bucket: usize, fp: u16) -> bool {
        SemisortBuckets::try_insert(self, bucket, fp)
    }
    #[inline]
    fn contains(&self, bucket: usize, fp: u16) -> bool {
        SemisortBuckets::contains(self, bucket, fp)
    }
    #[inline]
    fn contains_pair(&self, bucket: usize, alt: usize, fp: u16) -> bool {
        SemisortBuckets::contains_pair(self, bucket, alt, fp)
    }
    #[inline]
    fn count(&self, bucket: usize, fp: u16) -> usize {
        SemisortBuckets::count(self, bucket, fp)
    }
    #[inline]
    fn remove_one(&mut self, bucket: usize, fp: u16) -> bool {
        SemisortBuckets::remove_one(self, bucket, fp)
    }
    #[inline]
    fn take(&mut self, bucket: usize, slot: usize) -> u16 {
        SemisortBuckets::take(self, bucket, slot)
    }
    #[inline]
    fn swap(&mut self, bucket: usize, slot: usize, fp: u16) -> u16 {
        SemisortBuckets::swap(self, bucket, slot, fp)
    }
    #[inline]
    fn bucket_slots(&self, bucket: usize) -> Vec<u16> {
        SemisortBuckets::bucket_slots(self, bucket)
    }
    #[inline]
    fn extend_buckets(&mut self, extra: usize) {
        SemisortBuckets::extend_buckets(self, extra)
    }
    fn recount(&self) -> (usize, Vec<usize>) {
        SemisortBuckets::recount(self)
    }
    fn heap_bytes(&self) -> usize {
        SemisortBuckets::heap_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips_through_any_buckets() {
        let p = AnyBuckets::new(StorageKind::Packed, 4, 4);
        assert_eq!(p.kind(), StorageKind::Packed);
        let s = AnyBuckets::new(StorageKind::Semisort, 4, 4);
        assert_eq!(s.kind(), StorageKind::Semisort);
        assert_eq!(StorageKind::default(), StorageKind::Packed);
    }

    #[test]
    fn env_resolution_accepts_every_documented_spelling() {
        // The pure resolution rule is tested directly: mutating CCF_STORAGE in-process
        // would race other tests and fight the from_env OnceLock cache.
        assert_eq!(
            StorageKind::resolve_env_value(None),
            Ok(StorageKind::Packed)
        );
        assert_eq!(
            StorageKind::resolve_env_value(Some("")),
            Ok(StorageKind::Packed)
        );
        assert_eq!(
            StorageKind::resolve_env_value(Some("packed")),
            Ok(StorageKind::Packed)
        );
        assert_eq!(
            StorageKind::resolve_env_value(Some("semisort")),
            Ok(StorageKind::Semisort)
        );
        assert_eq!(
            StorageKind::resolve_env_value(Some("compressed")),
            Ok(StorageKind::Semisort)
        );
    }

    #[test]
    fn env_resolution_rejects_unknown_values_with_typed_error() {
        let err = StorageKind::resolve_env_value(Some("zstd")).unwrap_err();
        assert_eq!(err.value, "zstd");
        let msg = err.to_string();
        assert!(msg.contains("zstd") && msg.contains("packed"), "{msg}");
        // Spellings are exact: case variants are rejected, not silently accepted.
        assert!(StorageKind::resolve_env_value(Some("Packed")).is_err());
        assert!("semisort".parse::<StorageKind>().is_ok());
        assert!("semi-sort".parse::<StorageKind>().is_err());
    }

    #[test]
    fn storage_tags_are_a_stable_wire_contract() {
        assert_eq!(StorageKind::Packed.tag(), 0);
        assert_eq!(StorageKind::Semisort.tag(), 1);
        for kind in [StorageKind::Packed, StorageKind::Semisort] {
            assert_eq!(StorageKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(StorageKind::from_tag(2), None);
    }

    #[test]
    fn raw_round_trip_rebuilds_identical_stores() {
        for kind in [StorageKind::Packed, StorageKind::Semisort] {
            let mut b = AnyBuckets::new(kind, 8, 4);
            for fp in [3u16, 9, 0xFFF, 3] {
                assert!(b.try_insert(usize::from(fp) % 8, fp));
            }
            let rebuilt =
                AnyBuckets::from_raw_parts(kind, 8, 4, b.raw_words().to_vec(), b.counts().to_vec())
                    .unwrap();
            assert_eq!(rebuilt, b);
        }
    }

    #[test]
    fn raw_import_rejects_inconsistent_images() {
        let b = AnyBuckets::new(StorageKind::Packed, 8, 4);
        let words = b.raw_words().to_vec();
        let counts = b.counts().to_vec();
        assert!(matches!(
            AnyBuckets::from_raw_parts(
                StorageKind::Packed,
                8,
                4,
                words[1..].to_vec(),
                counts.clone()
            ),
            Err(StoreImportError::WordLenMismatch { .. })
        ));
        assert!(matches!(
            AnyBuckets::from_raw_parts(
                StorageKind::Packed,
                8,
                4,
                words.clone(),
                counts[1..].to_vec()
            ),
            Err(StoreImportError::CountLenMismatch { .. })
        ));
        let mut high = counts.clone();
        high[0] = 5;
        assert!(matches!(
            AnyBuckets::from_raw_parts(StorageKind::Packed, 8, 4, words.clone(), high),
            Err(StoreImportError::CountOutOfRange {
                bucket: 0,
                got: 5,
                max: 4
            })
        ));
        // A counter claiming an occupant the words don't contain is caught by the
        // recount cross-check.
        let mut lying = counts.clone();
        lying[3] = 1;
        assert!(matches!(
            AnyBuckets::from_raw_parts(StorageKind::Packed, 8, 4, words.clone(), lying),
            Err(StoreImportError::OccupancyMismatch {
                bucket: 3,
                stored: 1,
                derived: 0
            })
        ));
        assert!(matches!(
            AnyBuckets::from_raw_parts(StorageKind::Semisort, 8, 9, vec![], vec![]),
            Err(StoreImportError::UnsupportedBucketWidth {
                entries_per_bucket: 9
            })
        ));
    }

    #[test]
    fn dispatch_reaches_both_backends() {
        for kind in [StorageKind::Packed, StorageKind::Semisort] {
            let mut b = AnyBuckets::new(kind, 2, 4);
            assert!(b.try_insert(0, 0x123));
            assert!(b.contains(0, 0x123));
            assert!(b.contains_pair(1, 0, 0x123));
            assert_eq!(b.count(0, 0x123), 1);
            assert_eq!(b.occupied(), 1);
            assert_eq!(b.counts(), &[1, 0]);
            assert!(b.remove_one(0, 0x123));
            assert!(b.is_bucket_empty(0));
            b.extend_buckets(2);
            assert_eq!(b.num_buckets(), 4);
            assert!(b.heap_bytes() > 0, "{kind}: storage must report its bytes");
        }
    }

    #[test]
    fn display_matches_env_spelling() {
        assert_eq!(StorageKind::Packed.to_string(), "packed");
        assert_eq!(StorageKind::Semisort.to_string(), "semisort");
    }
}
