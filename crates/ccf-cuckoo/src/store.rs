//! The pluggable bucket-storage abstraction behind [`crate::CuckooFilter`].
//!
//! Every filter operation touches bucket storage through exactly one interface:
//! [`BucketStore`], implemented by two backends with identical *membership* semantics
//! but different representations:
//!
//! * [`PackedBuckets`] — the default: four 16-bit fingerprint lanes per word, SWAR
//!   whole-bucket compares, slot order preserved across mutations.
//! * [`SemisortBuckets`] — the §4.2 semi-sorting encoding made operational: each
//!   bucket's fingerprints are kept canonically sorted and their 4-bit prefixes are
//!   stored as a single combinatorial rank, saving
//!   [`crate::semisort::bits_saved_per_entry`]`(b)` bits per slot (1 bit at `b = 4`).
//!
//! The backends differ in *slot arrangement* (packed preserves insertion slots,
//! semisort canonicalizes to sorted order), but every pair-level question a cuckoo
//! filter asks — does this bucket pair hold κ, how many copies, remove one copy —
//! answers identically, which is why a filter can swap representation without changing
//! observable behavior as long as its insert paths succeed. The choice is a runtime
//! [`StorageKind`] knob (an enum dispatch, [`AnyBuckets`]) rather than a generic
//! parameter so one `CuckooFilter` type serves both backends and the builder facade
//! can select storage from configuration.

use crate::packed::PackedBuckets;
use crate::semisort::SemisortBuckets;

/// Which bucket-storage backend a filter uses.
///
/// Defaults to [`StorageKind::Packed`]. [`StorageKind::from_env`] lets a test harness
/// flip the whole suite to the compressed backend via the `CCF_STORAGE` environment
/// variable; parameter-struct `Default`s consult it so the CI storage matrix needs no
/// per-test plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageKind {
    /// Bit-packed 16-bit lanes with SWAR probes ([`PackedBuckets`]) — the default.
    #[default]
    Packed,
    /// Semi-sorted buckets with rank-encoded 4-bit prefixes ([`SemisortBuckets`]),
    /// saving [`crate::semisort::bits_saved_per_entry`]`(b)` stored bits per slot.
    /// Requires `entries_per_bucket ≤` [`MAX_SEMISORT_ENTRIES`].
    Semisort,
}

/// Widest bucket the semisort backend supports: the rank decode table has
/// C(15 + b, b) entries, which stays cache-friendly up to `b = 8` (490 314 ranks,
/// the paper's largest evaluated bucket) and grows combinatorially beyond it.
pub const MAX_SEMISORT_ENTRIES: usize = 8;

impl StorageKind {
    /// Resolve the backend from the `CCF_STORAGE` environment variable:
    /// `semisort` (or `compressed`) selects [`StorageKind::Semisort`]; anything else —
    /// including unset — selects [`StorageKind::Packed`]. Read once and cached, so a
    /// process cannot observe a mid-run flip.
    pub fn from_env() -> Self {
        static KIND: std::sync::OnceLock<StorageKind> = std::sync::OnceLock::new();
        *KIND.get_or_init(|| match std::env::var("CCF_STORAGE").as_deref() {
            Ok("semisort") | Ok("compressed") => StorageKind::Semisort,
            _ => StorageKind::Packed,
        })
    }
}

impl std::fmt::Display for StorageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageKind::Packed => write!(f, "packed"),
            StorageKind::Semisort => write!(f, "semisort"),
        }
    }
}

/// The storage interface a cuckoo filter drives: insert/kick (`try_insert`, `swap`),
/// growth remap (`take`, `extend_buckets`), deletion (`remove_one`), the probe kernel
/// (`prefetch`, `contains_pair`) and occupancy/size accounting.
///
/// # Slot semantics
///
/// Slot indices `0..entries_per_bucket` address a bucket's entries, but *which*
/// fingerprint a given index holds is backend-defined: [`PackedBuckets`] preserves
/// physical slots across mutations, while [`SemisortBuckets`] re-canonicalizes every
/// bucket to `(prefix, remainder)`-sorted order (empties first). Callers may rely on
/// slot indices only within the span between two mutations of that bucket — exactly
/// how the kick loop and the growth remap use them. All *value*-level operations
/// (`contains`, `count`, `remove_one`) are representation-independent.
pub trait BucketStore {
    /// Number of buckets.
    fn num_buckets(&self) -> usize;
    /// Slots per bucket (the `b` parameter).
    fn entries_per_bucket(&self) -> usize;
    /// Total occupied slots — O(1), maintained not scanned.
    fn occupied(&self) -> usize;
    /// Occupied slots in `bucket` — O(1).
    fn bucket_len(&self, bucket: usize) -> usize;
    /// Whether every slot of `bucket` is occupied — O(1).
    fn is_full(&self, bucket: usize) -> bool;
    /// Whether `bucket` has no occupied slots — O(1).
    fn is_bucket_empty(&self, bucket: usize) -> bool;
    /// Per-bucket occupancy counters, one byte per bucket, for
    /// [`crate::OccupancyStats`] aggregation.
    fn counts(&self) -> &[u8];
    /// Best-effort prefetch of `bucket`'s backing words (the batch kernel's prefetch
    /// pass); a pure performance hint.
    fn prefetch(&self, bucket: usize);
    /// Fingerprint stored at `slot` of `bucket` (0 if empty).
    fn get(&self, bucket: usize, slot: usize) -> u16;
    /// Insert `fp` into a free slot of `bucket`; `false` if the bucket is full.
    fn try_insert(&mut self, bucket: usize, fp: u16) -> bool;
    /// Whether `bucket` holds `fp`.
    fn contains(&self, bucket: usize, fp: u16) -> bool;
    /// Whether either bucket of a candidate pair holds `fp` — the whole-pair
    /// membership probe.
    fn contains_pair(&self, bucket: usize, alt: usize, fp: u16) -> bool;
    /// Number of copies of `fp` in `bucket`.
    fn count(&self, bucket: usize, fp: u16) -> usize;
    /// Remove one copy of `fp` from `bucket`; `true` if a copy was removed.
    fn remove_one(&mut self, bucket: usize, fp: u16) -> bool;
    /// Empty `slot` of `bucket`, returning the fingerprint it held (0 if empty) — the
    /// growth remap's move primitive.
    fn take(&mut self, bucket: usize, slot: usize) -> u16;
    /// Replace the fingerprint at `slot` of `bucket` with `fp`, returning the previous
    /// occupant — the kick primitive.
    fn swap(&mut self, bucket: usize, slot: usize, fp: u16) -> u16;
    /// The slots of `bucket` including empties, in the backend's slot order.
    fn bucket_slots(&self, bucket: usize) -> Vec<u16>;
    /// Append `extra` empty buckets (capacity doubling passes `extra == num_buckets`).
    fn extend_buckets(&mut self, extra: usize);
    /// Recount occupancy from the raw representation, bypassing the maintained
    /// counters (drift tests only).
    fn recount(&self) -> (usize, Vec<usize>);
    /// Actual allocated bytes of the bucket storage (backing words plus occupancy
    /// counters; excludes constant-size shared metadata such as the semisort decode
    /// table, which does not scale with the filter).
    fn heap_bytes(&self) -> usize;
}

/// Runtime-dispatched bucket storage: the concrete backend behind a
/// [`crate::CuckooFilter`], selected by [`StorageKind`] at construction.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyBuckets {
    /// The default SWAR-probed packed layout.
    Packed(PackedBuckets),
    /// The semisort-compressed layout.
    Semisort(SemisortBuckets),
}

impl AnyBuckets {
    /// Create empty storage of the chosen backend.
    ///
    /// # Panics
    /// Panics if `entries_per_bucket` is outside the chosen backend's supported range
    /// (see [`PackedBuckets::new`] and [`SemisortBuckets::new`]).
    pub fn new(kind: StorageKind, num_buckets: usize, entries_per_bucket: usize) -> Self {
        match kind {
            StorageKind::Packed => {
                AnyBuckets::Packed(PackedBuckets::new(num_buckets, entries_per_bucket))
            }
            StorageKind::Semisort => {
                AnyBuckets::Semisort(SemisortBuckets::new(num_buckets, entries_per_bucket))
            }
        }
    }

    /// Which backend this storage is.
    pub fn kind(&self) -> StorageKind {
        match self {
            AnyBuckets::Packed(_) => StorageKind::Packed,
            AnyBuckets::Semisort(_) => StorageKind::Semisort,
        }
    }
}

/// Delegate every [`BucketStore`] method to the active backend.
macro_rules! dispatch {
    ($self:ident, $s:ident => $e:expr) => {
        match $self {
            AnyBuckets::Packed($s) => $e,
            AnyBuckets::Semisort($s) => $e,
        }
    };
}

impl BucketStore for AnyBuckets {
    #[inline]
    fn num_buckets(&self) -> usize {
        dispatch!(self, s => s.num_buckets())
    }
    #[inline]
    fn entries_per_bucket(&self) -> usize {
        dispatch!(self, s => s.entries_per_bucket())
    }
    #[inline]
    fn occupied(&self) -> usize {
        dispatch!(self, s => s.occupied())
    }
    #[inline]
    fn bucket_len(&self, bucket: usize) -> usize {
        dispatch!(self, s => s.bucket_len(bucket))
    }
    #[inline]
    fn is_full(&self, bucket: usize) -> bool {
        dispatch!(self, s => s.is_full(bucket))
    }
    #[inline]
    fn is_bucket_empty(&self, bucket: usize) -> bool {
        dispatch!(self, s => s.is_bucket_empty(bucket))
    }
    #[inline]
    fn counts(&self) -> &[u8] {
        dispatch!(self, s => s.counts())
    }
    #[inline]
    fn prefetch(&self, bucket: usize) {
        dispatch!(self, s => s.prefetch(bucket))
    }
    #[inline]
    fn get(&self, bucket: usize, slot: usize) -> u16 {
        dispatch!(self, s => s.get(bucket, slot))
    }
    #[inline]
    fn try_insert(&mut self, bucket: usize, fp: u16) -> bool {
        dispatch!(self, s => s.try_insert(bucket, fp))
    }
    #[inline]
    fn contains(&self, bucket: usize, fp: u16) -> bool {
        dispatch!(self, s => s.contains(bucket, fp))
    }
    #[inline]
    fn contains_pair(&self, bucket: usize, alt: usize, fp: u16) -> bool {
        dispatch!(self, s => s.contains_pair(bucket, alt, fp))
    }
    #[inline]
    fn count(&self, bucket: usize, fp: u16) -> usize {
        dispatch!(self, s => s.count(bucket, fp))
    }
    #[inline]
    fn remove_one(&mut self, bucket: usize, fp: u16) -> bool {
        dispatch!(self, s => s.remove_one(bucket, fp))
    }
    #[inline]
    fn take(&mut self, bucket: usize, slot: usize) -> u16 {
        dispatch!(self, s => s.take(bucket, slot))
    }
    #[inline]
    fn swap(&mut self, bucket: usize, slot: usize, fp: u16) -> u16 {
        dispatch!(self, s => s.swap(bucket, slot, fp))
    }
    #[inline]
    fn bucket_slots(&self, bucket: usize) -> Vec<u16> {
        dispatch!(self, s => s.bucket_slots(bucket))
    }
    #[inline]
    fn extend_buckets(&mut self, extra: usize) {
        dispatch!(self, s => s.extend_buckets(extra))
    }
    fn recount(&self) -> (usize, Vec<usize>) {
        dispatch!(self, s => s.recount())
    }
    fn heap_bytes(&self) -> usize {
        dispatch!(self, s => s.heap_bytes())
    }
}

impl BucketStore for PackedBuckets {
    #[inline]
    fn num_buckets(&self) -> usize {
        PackedBuckets::num_buckets(self)
    }
    #[inline]
    fn entries_per_bucket(&self) -> usize {
        PackedBuckets::entries_per_bucket(self)
    }
    #[inline]
    fn occupied(&self) -> usize {
        PackedBuckets::occupied(self)
    }
    #[inline]
    fn bucket_len(&self, bucket: usize) -> usize {
        PackedBuckets::bucket_len(self, bucket)
    }
    #[inline]
    fn is_full(&self, bucket: usize) -> bool {
        PackedBuckets::is_full(self, bucket)
    }
    #[inline]
    fn is_bucket_empty(&self, bucket: usize) -> bool {
        PackedBuckets::is_bucket_empty(self, bucket)
    }
    #[inline]
    fn counts(&self) -> &[u8] {
        PackedBuckets::counts(self)
    }
    #[inline]
    fn prefetch(&self, bucket: usize) {
        PackedBuckets::prefetch(self, bucket)
    }
    #[inline]
    fn get(&self, bucket: usize, slot: usize) -> u16 {
        PackedBuckets::get(self, bucket, slot)
    }
    #[inline]
    fn try_insert(&mut self, bucket: usize, fp: u16) -> bool {
        PackedBuckets::try_insert(self, bucket, fp)
    }
    #[inline]
    fn contains(&self, bucket: usize, fp: u16) -> bool {
        PackedBuckets::contains(self, bucket, fp)
    }
    #[inline]
    fn contains_pair(&self, bucket: usize, alt: usize, fp: u16) -> bool {
        PackedBuckets::contains_pair(self, bucket, alt, fp)
    }
    #[inline]
    fn count(&self, bucket: usize, fp: u16) -> usize {
        PackedBuckets::count(self, bucket, fp)
    }
    #[inline]
    fn remove_one(&mut self, bucket: usize, fp: u16) -> bool {
        PackedBuckets::remove_one(self, bucket, fp)
    }
    #[inline]
    fn take(&mut self, bucket: usize, slot: usize) -> u16 {
        PackedBuckets::take(self, bucket, slot)
    }
    #[inline]
    fn swap(&mut self, bucket: usize, slot: usize, fp: u16) -> u16 {
        PackedBuckets::swap(self, bucket, slot, fp)
    }
    #[inline]
    fn bucket_slots(&self, bucket: usize) -> Vec<u16> {
        PackedBuckets::bucket_slots(self, bucket)
    }
    #[inline]
    fn extend_buckets(&mut self, extra: usize) {
        PackedBuckets::extend_buckets(self, extra)
    }
    fn recount(&self) -> (usize, Vec<usize>) {
        PackedBuckets::recount(self)
    }
    fn heap_bytes(&self) -> usize {
        PackedBuckets::heap_bytes(self)
    }
}

impl BucketStore for SemisortBuckets {
    #[inline]
    fn num_buckets(&self) -> usize {
        SemisortBuckets::num_buckets(self)
    }
    #[inline]
    fn entries_per_bucket(&self) -> usize {
        SemisortBuckets::entries_per_bucket(self)
    }
    #[inline]
    fn occupied(&self) -> usize {
        SemisortBuckets::occupied(self)
    }
    #[inline]
    fn bucket_len(&self, bucket: usize) -> usize {
        SemisortBuckets::bucket_len(self, bucket)
    }
    #[inline]
    fn is_full(&self, bucket: usize) -> bool {
        SemisortBuckets::is_full(self, bucket)
    }
    #[inline]
    fn is_bucket_empty(&self, bucket: usize) -> bool {
        SemisortBuckets::is_bucket_empty(self, bucket)
    }
    #[inline]
    fn counts(&self) -> &[u8] {
        SemisortBuckets::counts(self)
    }
    #[inline]
    fn prefetch(&self, bucket: usize) {
        SemisortBuckets::prefetch(self, bucket)
    }
    #[inline]
    fn get(&self, bucket: usize, slot: usize) -> u16 {
        SemisortBuckets::get(self, bucket, slot)
    }
    #[inline]
    fn try_insert(&mut self, bucket: usize, fp: u16) -> bool {
        SemisortBuckets::try_insert(self, bucket, fp)
    }
    #[inline]
    fn contains(&self, bucket: usize, fp: u16) -> bool {
        SemisortBuckets::contains(self, bucket, fp)
    }
    #[inline]
    fn contains_pair(&self, bucket: usize, alt: usize, fp: u16) -> bool {
        SemisortBuckets::contains_pair(self, bucket, alt, fp)
    }
    #[inline]
    fn count(&self, bucket: usize, fp: u16) -> usize {
        SemisortBuckets::count(self, bucket, fp)
    }
    #[inline]
    fn remove_one(&mut self, bucket: usize, fp: u16) -> bool {
        SemisortBuckets::remove_one(self, bucket, fp)
    }
    #[inline]
    fn take(&mut self, bucket: usize, slot: usize) -> u16 {
        SemisortBuckets::take(self, bucket, slot)
    }
    #[inline]
    fn swap(&mut self, bucket: usize, slot: usize, fp: u16) -> u16 {
        SemisortBuckets::swap(self, bucket, slot, fp)
    }
    #[inline]
    fn bucket_slots(&self, bucket: usize) -> Vec<u16> {
        SemisortBuckets::bucket_slots(self, bucket)
    }
    #[inline]
    fn extend_buckets(&mut self, extra: usize) {
        SemisortBuckets::extend_buckets(self, extra)
    }
    fn recount(&self) -> (usize, Vec<usize>) {
        SemisortBuckets::recount(self)
    }
    fn heap_bytes(&self) -> usize {
        SemisortBuckets::heap_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips_through_any_buckets() {
        let p = AnyBuckets::new(StorageKind::Packed, 4, 4);
        assert_eq!(p.kind(), StorageKind::Packed);
        let s = AnyBuckets::new(StorageKind::Semisort, 4, 4);
        assert_eq!(s.kind(), StorageKind::Semisort);
        assert_eq!(StorageKind::default(), StorageKind::Packed);
    }

    #[test]
    fn dispatch_reaches_both_backends() {
        for kind in [StorageKind::Packed, StorageKind::Semisort] {
            let mut b = AnyBuckets::new(kind, 2, 4);
            assert!(b.try_insert(0, 0x123));
            assert!(b.contains(0, 0x123));
            assert!(b.contains_pair(1, 0, 0x123));
            assert_eq!(b.count(0, 0x123), 1);
            assert_eq!(b.occupied(), 1);
            assert_eq!(b.counts(), &[1, 0]);
            assert!(b.remove_one(0, 0x123));
            assert!(b.is_bucket_empty(0));
            b.extend_buckets(2);
            assert_eq!(b.num_buckets(), 4);
            assert!(b.heap_bytes() > 0, "{kind}: storage must report its bytes");
        }
    }

    #[test]
    fn display_matches_env_spelling() {
        assert_eq!(StorageKind::Packed.to_string(), "packed");
        assert_eq!(StorageKind::Semisort.to_string(), "semisort");
    }
}
