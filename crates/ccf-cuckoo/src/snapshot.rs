//! Shared snapshot framing: a tiny byte codec plus the sealed-blob envelope every
//! persistent image in the workspace uses.
//!
//! A sealed blob is `magic (u32 LE) | version (u8) | payload | fnv64 checksum
//! (u64 LE over everything before it)`. The envelope gives every consumer the same
//! three typed failure modes — wrong magic, unsupported (future) version, checksum
//! mismatch — before a single payload byte is interpreted, so a truncated or
//! bit-flipped file can never half-construct a filter. Blobs nest: a composite image
//! (a CCF variant, a sharded service) embeds child blobs via
//! [`ByteWriter::put_len_bytes`], each sealed and checked independently.
//!
//! The codec is deliberately boring: fixed-width little-endian integers, no varints,
//! no framing cleverness. Snapshot size is dominated by the raw storage words, which
//! are already bit-packed by the store itself.

use crate::store::StoreImportError;

/// Why a snapshot image could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The leading magic number identifies a different (or no) snapshot type.
    WrongMagic {
        /// The magic the decoder expected.
        expected: u32,
        /// The magic actually present.
        got: u32,
    },
    /// The image was written by a newer (or otherwise unknown) format version.
    UnsupportedVersion {
        /// The version this build can decode.
        supported: u8,
        /// The version actually present.
        got: u8,
    },
    /// The image ends before the field being read — truncation or a corrupted
    /// length prefix.
    Truncated,
    /// The image decodes past its payload — corruption or a format mismatch.
    TrailingBytes {
        /// Unconsumed payload bytes.
        remaining: usize,
    },
    /// The trailing FNV-1a 64 checksum disagrees with the payload — bit rot or a
    /// torn write.
    ChecksumMismatch {
        /// The checksum stored in the image.
        stored: u64,
        /// The checksum recomputed over the payload.
        computed: u64,
    },
    /// The payload decoded but the raw storage image failed validation.
    Import(StoreImportError),
    /// The payload decoded but a field carries a value no valid filter can have.
    Invalid(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::WrongMagic { expected, got } => {
                write!(
                    f,
                    "wrong snapshot magic {got:#010x} (expected {expected:#010x})"
                )
            }
            SnapshotError::UnsupportedVersion { supported, got } => write!(
                f,
                "unsupported snapshot version {got} (this build decodes version {supported})"
            ),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::TrailingBytes { remaining } => {
                write!(
                    f,
                    "snapshot has {remaining} trailing bytes past its payload"
                )
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapshotError::Import(e) => write!(f, "snapshot storage image rejected: {e}"),
            SnapshotError::Invalid(msg) => write!(f, "snapshot field invalid: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Import(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreImportError> for SnapshotError {
    fn from(e: StoreImportError) -> Self {
        SnapshotError::Import(e)
    }
}

/// Copy an exactly-`N`-byte slice into an array. Callers pass slices whose
/// length a bounds check already established; `copy_from_slice` re-asserts it
/// without routing through a fallible conversion.
fn copy_arr<const N: usize>(slice: &[u8]) -> [u8; N] {
    let mut out = [0u8; N];
    out.copy_from_slice(slice);
    out
}

/// FNV-1a 64 over `bytes` — the workspace's snapshot checksum. Not cryptographic;
/// it exists to catch truncation, bit rot and torn writes, and its simplicity keeps
/// the snapshot path dependency-free.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only encoder for a sealed snapshot blob. Construction writes the
/// `magic | version` header; [`ByteWriter::seal`] appends the checksum and yields
/// the finished image.
#[derive(Debug)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Start a blob with the given magic and format version.
    pub fn new(magic: u32, version: u8) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&magic.to_le_bytes());
        buf.push(version);
        ByteWriter { buf }
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64` (the on-disk format is width-independent).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append raw bytes with no length prefix (the field's length must be derivable
    /// by the decoder).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a `u64` length prefix followed by the bytes — the embedding primitive
    /// for nested blobs and variable-length fields.
    pub fn put_len_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.put_bytes(bytes);
    }

    /// Append a `u64` length prefix followed by the words, little-endian — the raw
    /// storage image primitive.
    pub fn put_u64_slice(&mut self, words: &[u64]) {
        self.put_usize(words.len());
        for &w in words {
            self.put_u64(w);
        }
    }

    /// Append the FNV-1a 64 checksum of everything written so far and return the
    /// finished image.
    pub fn seal(mut self) -> Vec<u8> {
        let checksum = fnv64(&self.buf);
        self.buf.extend_from_slice(&checksum.to_le_bytes());
        self.buf
    }
}

/// Cursor-style decoder over a sealed snapshot blob. [`ByteReader::open`] verifies
/// the envelope (checksum, magic, version) before any payload field is read;
/// [`ByteReader::finish`] verifies the payload was consumed exactly.
#[derive(Debug)]
pub struct ByteReader<'a> {
    payload: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Verify the envelope of `bytes` (checksum over everything before the trailing
    /// 8 bytes, then magic, then version) and return a reader positioned at the first
    /// payload byte. Checksum is verified *first*: a bit flip in the magic or version
    /// field reports as corruption, not as a foreign or future format.
    pub fn open(bytes: &'a [u8], magic: u32, version: u8) -> Result<Self, SnapshotError> {
        const HEADER: usize = 4 + 1;
        const CHECKSUM: usize = 8;
        if bytes.len() < HEADER + CHECKSUM {
            return Err(SnapshotError::Truncated);
        }
        let (body, tail) = bytes.split_at(bytes.len() - CHECKSUM);
        let stored = u64::from_le_bytes(copy_arr(tail));
        let computed = fnv64(body);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        let got_magic = u32::from_le_bytes(copy_arr(&body[..4]));
        if got_magic != magic {
            return Err(SnapshotError::WrongMagic {
                expected: magic,
                got: got_magic,
            });
        }
        let got_version = body[4];
        if got_version != version {
            return Err(SnapshotError::UnsupportedVersion {
                supported: version,
                got: got_version,
            });
        }
        Ok(ByteReader {
            payload: &body[HEADER..],
            pos: 0,
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.payload.len() {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.payload[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(copy_arr(self.take(2)?)))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(copy_arr(self.take(4)?)))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(copy_arr(self.take(8)?)))
    }

    /// Read a `u64` and narrow it to `usize`.
    pub fn get_usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.get_u64()?)
            .map_err(|_| SnapshotError::Invalid("length exceeds the address space".into()))
    }

    /// Read exactly `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        self.take(n)
    }

    /// Read a `u64`-length-prefixed byte field written by
    /// [`ByteWriter::put_len_bytes`]. The length is bounded by the remaining payload
    /// before any allocation, so a corrupted prefix cannot trigger an absurd reserve.
    pub fn get_len_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.get_usize()?;
        self.take(len)
    }

    /// Read a `u64`-length-prefixed word slice written by
    /// [`ByteWriter::put_u64_slice`].
    pub fn get_u64_slice(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let len = self.get_usize()?;
        if len > self.payload.len().saturating_sub(self.pos) / 8 {
            return Err(SnapshotError::Truncated);
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_u64()?);
        }
        Ok(out)
    }

    /// Bytes of payload not yet consumed.
    pub fn remaining(&self) -> usize {
        self.payload.len() - self.pos
    }

    /// Assert the payload was consumed exactly; leftover bytes mean the image and
    /// the decoder disagree about the format.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.pos != self.payload.len() {
            return Err(SnapshotError::TrailingBytes {
                remaining: self.payload.len() - self.pos,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: u32 = 0x5453_5431; // "1TST"

    fn sample() -> Vec<u8> {
        let mut w = ByteWriter::new(MAGIC, 1);
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64_slice(&[1, 2, 3]);
        w.put_len_bytes(b"hello");
        w.seal()
    }

    #[test]
    fn round_trip() {
        let img = sample();
        let mut r = ByteReader::open(&img, MAGIC, 1).unwrap();
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_slice().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_len_bytes().unwrap(), b"hello");
        r.finish().unwrap();
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let img = sample();
        for byte in 0..img.len() {
            for bit in 0..8 {
                let mut bad = img.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    ByteReader::open(&bad, MAGIC, 1).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let img = sample();
        for len in 0..img.len() {
            assert!(
                ByteReader::open(&img[..len], MAGIC, 1).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn wrong_magic_and_future_version_are_typed() {
        let img = ByteWriter::new(MAGIC, 1).seal();
        match ByteReader::open(&img, MAGIC ^ 1, 1) {
            Err(SnapshotError::WrongMagic { expected, got }) => {
                assert_eq!(expected, MAGIC ^ 1);
                assert_eq!(got, MAGIC);
            }
            other => panic!("expected WrongMagic, got {other:?}"),
        }
        let future = ByteWriter::new(MAGIC, 2).seal();
        match ByteReader::open(&future, MAGIC, 1) {
            Err(SnapshotError::UnsupportedVersion { supported, got }) => {
                assert_eq!((supported, got), (1, 2));
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let img = sample();
        let mut r = ByteReader::open(&img, MAGIC, 1).unwrap();
        let _ = r.get_u8().unwrap();
        match r.finish() {
            Err(SnapshotError::TrailingBytes { remaining }) => assert!(remaining > 0),
            other => panic!("expected TrailingBytes, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_length_prefix_is_truncation_not_oom() {
        let mut w = ByteWriter::new(MAGIC, 1);
        w.put_u64(u64::MAX); // absurd length prefix
        let img = w.seal();
        let mut r = ByteReader::open(&img, MAGIC, 1).unwrap();
        assert!(matches!(
            r.get_u64_slice(),
            Err(SnapshotError::Truncated) | Err(SnapshotError::Invalid(_))
        ));
    }
}
