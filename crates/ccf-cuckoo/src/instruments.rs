//! The event-telemetry bundle the cuckoo structures record into.
//!
//! Each structure ([`crate::CuckooFilter`], [`crate::CuckooHashTable`],
//! [`crate::ChainedCuckooTable`]) owns a [`FilterInstruments`], which starts disabled
//! (`Default`) and is resolved against a live registry by the structure's
//! `attach_telemetry` method. Resolution happens **once at attach time** — the hot
//! paths touch pre-resolved handles, never the registry — and a disabled bundle costs
//! one branch per recorded event.
//!
//! All series share metric names and are distinguished by a `structure` label (plus
//! whatever labels the caller adds: `variant`, `shard`, `storage`, …), so one
//! exposition shows the kick-depth distribution of every cuckoo structure in a
//! process side by side.

use ccf_telemetry::{buckets, Counter, Histogram, Telemetry};

/// Upper bound of the kick-depth histogram's finite buckets. Fixed (rather than
/// derived from `max_kicks`) so every structure's series share one bucket layout;
/// configs with a larger kick budget spill into the `+Inf` bucket.
pub const KICK_DEPTH_BUCKET_MAX: u64 = 512;

/// Pre-resolved instruments for one cuckoo structure.
///
/// Cloning a structure clones the bundle, so clones keep recording into the same
/// series — the same sharing semantics as cloning any `Arc`-backed handle.
#[derive(Debug, Clone, Default)]
pub struct FilterInstruments {
    /// Successful insertions (one per stored fingerprint / entry).
    pub inserts: Counter,
    /// Insertions that failed (kick budget exhausted or saturated pair).
    pub insert_failures: Counter,
    /// Kick (evict-and-reinsert) rounds per placement attempt; 0 = direct placement.
    pub kick_depth: Histogram,
    /// Capacity doublings.
    pub grows: Counter,
    /// Failed kick chains undone entry-by-entry (structures with rollback semantics).
    pub rollbacks: Counter,
    /// Insertions refused without kicking because the bucket pair was already
    /// saturated with copies of the fingerprint (the §4.3 duplicate cap).
    pub pair_saturated_failfasts: Counter,
    /// Insertions into a degenerate self-paired bucket (ℓ′ == ℓ) refused because no
    /// resident entry could be relocated.
    pub self_paired_failfasts: Counter,
    /// Successful deletions.
    pub deletes: Counter,
    /// Chain-walk depth per insertion for structures with chaining (pairs visited
    /// before one accepted the entry; 0 = primary pair). Disabled — even when the
    /// bundle is attached — for structures without chains, so their expositions stay
    /// free of dead series; [`FilterInstruments::resolve_chained`] enables it.
    pub chain_walk_depth: Histogram,
}

impl FilterInstruments {
    /// A bundle that records nothing (what every structure starts with).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Resolve the bundle against `telemetry`, labelling every series with
    /// `structure` plus the caller's extra labels.
    pub fn resolve(telemetry: &Telemetry, structure: &str, extra: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(&str, &str)> = vec![("structure", structure)];
        labels.extend_from_slice(extra);
        let labels = labels.as_slice();
        Self {
            inserts: telemetry.counter("cuckoo_inserts_total", "Successful insertions", labels),
            insert_failures: telemetry.counter(
                "cuckoo_insert_failures_total",
                "Insertions that failed after exhausting kicks or hitting a saturated pair",
                labels,
            ),
            kick_depth: telemetry.histogram(
                "cuckoo_kick_depth",
                "Kick rounds per placement attempt (0 = direct placement)",
                &buckets::log2(KICK_DEPTH_BUCKET_MAX),
                labels,
            ),
            grows: telemetry.counter("cuckoo_grows_total", "Capacity doublings", labels),
            rollbacks: telemetry.counter(
                "cuckoo_rollbacks_total",
                "Failed kick chains undone entry-by-entry",
                labels,
            ),
            pair_saturated_failfasts: telemetry.counter(
                "cuckoo_pair_saturated_failfasts_total",
                "Insertions refused fast: bucket pair already held its maximum fingerprint copies",
                labels,
            ),
            self_paired_failfasts: telemetry.counter(
                "cuckoo_self_paired_failfasts_total",
                "Insertions refused fast: degenerate self-paired bucket with no movable victim",
                labels,
            ),
            deletes: telemetry.counter("cuckoo_deletes_total", "Successful deletions", labels),
            chain_walk_depth: Histogram::disabled(),
        }
    }

    /// [`FilterInstruments::resolve`] plus the chain-walk histogram, for structures
    /// that store duplicates along chained bucket pairs.
    pub fn resolve_chained(telemetry: &Telemetry, structure: &str, extra: &[(&str, &str)]) -> Self {
        let mut bundle = Self::resolve(telemetry, structure, extra);
        let mut labels: Vec<(&str, &str)> = vec![("structure", structure)];
        labels.extend_from_slice(extra);
        bundle.chain_walk_depth = telemetry.histogram(
            "cuckoo_chain_walk_depth",
            "Chained bucket pairs visited per insertion (0 = primary pair)",
            &buckets::log2(KICK_DEPTH_BUCKET_MAX),
            &labels,
        );
        bundle
    }

    /// Whether this bundle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inserts.is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_bundle_is_inert() {
        let b = FilterInstruments::disabled();
        assert!(!b.is_enabled());
        b.inserts.inc();
        b.kick_depth.observe(3);
        assert_eq!(b.inserts.get(), 0);
        assert_eq!(b.kick_depth.count(), 0);
    }

    #[test]
    fn resolve_registers_labelled_series() {
        let t = Telemetry::enabled();
        let b = FilterInstruments::resolve(&t, "cuckoo_filter", &[("shard", "3")]);
        assert!(b.is_enabled());
        b.inserts.add(2);
        b.kick_depth.observe(1);
        let snap = t.snapshot();
        assert_eq!(
            snap.counter(
                "cuckoo_inserts_total",
                &[("structure", "cuckoo_filter"), ("shard", "3")]
            ),
            Some(2)
        );
        assert_eq!(
            snap.histogram(
                "cuckoo_kick_depth",
                &[("structure", "cuckoo_filter"), ("shard", "3")]
            )
            .unwrap()
            .count(),
            1
        );
    }

    #[test]
    fn two_structures_share_metric_names_but_not_series() {
        let t = Telemetry::enabled();
        let a = FilterInstruments::resolve(&t, "cuckoo_filter", &[]);
        let b = FilterInstruments::resolve(&t, "chained_table", &[]);
        a.inserts.inc();
        b.inserts.add(5);
        let snap = t.snapshot();
        assert_eq!(
            snap.counter("cuckoo_inserts_total", &[("structure", "cuckoo_filter")]),
            Some(1)
        );
        assert_eq!(
            snap.counter("cuckoo_inserts_total", &[("structure", "chained_table")]),
            Some(5)
        );
        assert_eq!(snap.counter_sum("cuckoo_inserts_total"), 6);
    }
}
