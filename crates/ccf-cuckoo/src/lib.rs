//! Cuckoo filter and cuckoo hash table substrate (§4 of the paper).
//!
//! This crate provides the structures the Conditional Cuckoo Filter is built from and
//! compared against:
//!
//! * [`CuckooFilter`] — a standard partial-key cuckoo filter (Fan et al., 2014): `m`
//!   buckets of `b` entries, each entry a small non-zero fingerprint κ; the alternate
//!   bucket is ℓ′ = ℓ ⊕ h(κ). This is the *"Cuckoo Filter"* baseline of Figures 6b/6d
//!   (a pre-built key-only join filter that ignores predicates) and the structure
//!   returned by predicate-only queries (Algorithm 2).
//! * Multiset insertion behaviour on [`CuckooFilter`] (§4.3): duplicate keys may be
//!   inserted as extra fingerprint copies, but at most `2b` copies fit in a bucket pair
//!   and load factors collapse under skew — the limitation that motivates chaining.
//! * [`CuckooHashTable`] — an open-addressing cuckoo hash table storing full keys and
//!   values (§4.1), used by the join substrate for exact hash joins and for the
//!   raw-hash-table size comparison of §10.7.
//! * [`packed`] — the bit-packed contiguous fingerprint store behind
//!   [`CuckooFilter`]: all `m·b` slots in one `Vec<u64>`, SWAR whole-bucket
//!   compares, O(1) maintained occupancy counters.
//! * [`semisort`] — the semi-sorting encoding of §4.2: the rank codec behind the
//!   bit-efficiency analysis (Figure 5) and [`SemisortBuckets`], the compressed
//!   bucket store built on it.
//! * [`store`] — the [`BucketStore`] abstraction over the two bucket backends and
//!   the [`StorageKind`] runtime selector threaded through the filter stack.
//! * [`geometry`] — the split bucket geometry that makes partial-key structures
//!   growable without their original keys, shared with the CCF variants upstream.
//! * [`metrics`] — occupancy / load-factor accounting shared by the experiments.
//! * [`instruments`] — the `ccf-telemetry` event bundle (kick depths, grows,
//!   fail-fasts) every cuckoo structure here records into when attached.

// `deny`, not `forbid`: the one documented exception is the prefetch hint in
// `geometry::prefetch_index` (an intrinsic that performs no memory access).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod chained_table;
pub mod filter;
pub mod geometry;
pub mod instruments;
pub mod metrics;
pub mod packed;
pub mod semisort;
pub mod snapshot;
pub mod store;
pub mod table;

pub use chained_table::ChainedCuckooTable;
pub use filter::{CuckooFilter, CuckooFilterParams, InsertError, MAX_KICKS};
pub use geometry::SplitGeometry;
pub use instruments::FilterInstruments;
pub use metrics::{GrowthStats, OccupancyStats};
pub use packed::PackedBuckets;
pub use semisort::SemisortBuckets;
pub use snapshot::{ByteReader, ByteWriter, SnapshotError};
pub use store::{
    AnyBuckets, BucketStore, StorageKind, StoreImportError, UnknownStorageKind,
    MAX_SEMISORT_ENTRIES,
};
pub use table::CuckooHashTable;
