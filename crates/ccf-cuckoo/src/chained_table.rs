//! A chained cuckoo hash *table* — the §11 extension.
//!
//! "Furthermore, the chaining technique can also be used to allow regular cuckoo hash
//! tables, which store the full key, to store duplicates." This module applies the
//! CCF's chaining idea (§6.2) to an ordinary open-addressing cuckoo hash table: at most
//! `d` entries for a key live in its bucket pair; once a pair is saturated, further
//! entries continue in a chained pair derived from `h(min(ℓ, ℓ′), key)`. Because full
//! keys are stored there are no false positives at all — the structure is an exact
//! multimap whose per-key capacity is no longer limited to `2b`, unlike
//! [`crate::CuckooHashTable::insert_duplicate`].

use ccf_hash::{HashFamily, SaltedHasher};
use ccf_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::instruments::FilterInstruments;

/// Maximum kick rounds before an insertion is reported as failed.
const MAX_KICKS: usize = 500;

/// Safety cap on chain length when walking pairs.
const WALK_SAFETY_CAP: usize = 1 << 16;

#[derive(Debug, Clone)]
struct Slot<V> {
    key: u64,
    value: V,
}

/// Error returned when the kick loop cannot free a slot (the table is effectively
/// full); the failed insertion leaves the table unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableFull {
    /// Load factor at the time of failure, in thousandths.
    pub load_factor_millis: u32,
}

impl std::fmt::Display for TableFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "chained cuckoo table full at load factor {:.3}",
            self.load_factor_millis as f64 / 1000.0
        )
    }
}

impl TableFull {
    /// Capture a failure at the given load factor, rounded (not floored) to
    /// thousandths. Every failure path constructs through here so the reported
    /// granularity can never diverge between paths again.
    pub fn at(load_factor: f64) -> Self {
        Self {
            load_factor_millis: (load_factor * 1000.0).round() as u32,
        }
    }
}

impl std::error::Error for TableFull {}

/// An exact multimap from `u64` keys to values, built on cuckoo hashing with the CCF's
/// chaining technique for duplicate keys.
#[derive(Debug, Clone)]
pub struct ChainedCuckooTable<V> {
    /// All `m · b` slots, flat and contiguous: bucket `B` owns
    /// `slots[B·b .. (B+1)·b]`, its entries always forming a dense prefix (pushes
    /// append; the kick loop only swaps within *full* buckets, and nothing is ever
    /// removed, so the prefix invariant holds by construction).
    slots: Vec<Option<Slot<V>>>,
    /// Occupied-slot count per bucket, maintained on every insertion.
    counts: Vec<u32>,
    bucket_mask: usize,
    entries_per_bucket: usize,
    max_dupes: usize,
    key_hasher: SaltedHasher,
    alt_hasher: SaltedHasher,
    chain_hasher: SaltedHasher,
    rng: StdRng,
    len: usize,
    /// Event telemetry (kick depths, chain walks, rollbacks); disabled until
    /// [`ChainedCuckooTable::attach_telemetry`].
    instruments: FilterInstruments,
}

impl<V> ChainedCuckooTable<V> {
    /// Create a table with at least `num_buckets` buckets (rounded up to a power of
    /// two) of `entries_per_bucket` slots, allowing `max_dupes` entries per key per
    /// bucket pair.
    ///
    /// # Panics
    /// Panics if `entries_per_bucket == 0`, `max_dupes == 0`, or `max_dupes` exceeds
    /// `2 · entries_per_bucket`.
    pub fn new(num_buckets: usize, entries_per_bucket: usize, max_dupes: usize, seed: u64) -> Self {
        assert!(
            entries_per_bucket > 0,
            "entries_per_bucket must be positive"
        );
        assert!(max_dupes > 0, "max_dupes must be positive");
        assert!(
            max_dupes <= 2 * entries_per_bucket,
            "max_dupes cannot exceed the bucket pair's 2b slots"
        );
        let m = num_buckets.next_power_of_two().max(2);
        let family = HashFamily::new(seed);
        Self {
            slots: (0..m * entries_per_bucket).map(|_| None).collect(),
            counts: vec![0; m],
            bucket_mask: m - 1,
            entries_per_bucket,
            max_dupes,
            key_hasher: family.hasher(0),
            alt_hasher: family.hasher(1),
            chain_hasher: family.hasher(2),
            rng: StdRng::seed_from_u64(seed ^ 0xC7A1),
            len: 0,
            instruments: FilterInstruments::disabled(),
        }
    }

    /// Resolve this table's event instruments against `telemetry`, labelling its
    /// series `structure="chained_table"` plus the caller's `extra` labels.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry, extra: &[(&str, &str)]) {
        self.instruments = FilterInstruments::resolve_chained(telemetry, "chained_table", extra);
    }

    /// Number of stored (key, value) entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupied entries of `bucket`, in insertion order (the dense prefix of its slot
    /// range).
    #[inline]
    fn bucket_entries(&self, bucket: usize) -> impl Iterator<Item = &Slot<V>> {
        let base = bucket * self.entries_per_bucket;
        self.slots[base..base + self.counts[bucket] as usize]
            .iter()
            .map(|s| s.as_ref().expect("dense prefix slot must be occupied"))
    }

    /// Append an entry to `bucket`'s dense prefix. The caller must have checked the
    /// bucket is not full.
    #[inline]
    fn push_entry(&mut self, bucket: usize, entry: Slot<V>) {
        let idx = bucket * self.entries_per_bucket + self.counts[bucket] as usize;
        debug_assert!(self.slots[idx].is_none());
        self.slots[idx] = Some(entry);
        self.counts[bucket] += 1;
        self.len += 1;
    }

    /// Current load factor.
    pub fn load_factor(&self) -> f64 {
        self.len as f64 / self.capacity() as f64
    }

    #[inline]
    fn primary_bucket(&self, key: u64) -> usize {
        self.key_hasher.hash_u64(key) as usize & self.bucket_mask
    }

    #[inline]
    fn alt_bucket(&self, bucket: usize, key: u64) -> usize {
        (bucket ^ (self.alt_hasher.hash_u64(key) as usize | 1)) & self.bucket_mask
    }

    #[inline]
    fn next_chain_bucket(&self, l: usize, l_alt: usize, key: u64, depth: usize) -> usize {
        let lmin = l.min(l_alt) as u64;
        (self
            .chain_hasher
            .hash_pair(lmin, key ^ ((depth as u64) << 48)) as usize)
            & self.bucket_mask
    }

    fn key_count_in_pair(&self, l: usize, l_alt: usize, key: u64) -> usize {
        let count = |b: usize| self.bucket_entries(b).filter(|s| s.key == key).count();
        if l == l_alt {
            count(l)
        } else {
            count(l) + count(l_alt)
        }
    }

    /// Insert another (key, value) entry. Duplicate keys are always accepted as long as
    /// space remains somewhere along the chain; the `2b` cap of a plain cuckoo table no
    /// longer applies.
    pub fn insert(&mut self, key: u64, value: V) -> Result<(), TableFull> {
        let mut l = self.primary_bucket(key);
        let b = self.entries_per_bucket;
        for depth in 0..WALK_SAFETY_CAP {
            let l_alt = self.alt_bucket(l, key);
            if self.key_count_in_pair(l, l_alt, key) >= self.max_dupes {
                l = self.next_chain_bucket(l, l_alt, key, depth);
                continue;
            }
            // Free slot in the primary or alternate bucket.
            if (self.counts[l] as usize) < b {
                self.push_entry(l, Slot { key, value });
                self.record_insert_telemetry(depth, 0);
                return Ok(());
            }
            if (self.counts[l_alt] as usize) < b {
                self.push_entry(l_alt, Slot { key, value });
                self.record_insert_telemetry(depth, 0);
                return Ok(());
            }
            // Kick loop on the alternate bucket; rollback on failure. Swaps only ever
            // touch full buckets, preserving the dense-prefix invariant.
            let mut carried = Slot { key, value };
            let mut bucket = l_alt;
            let mut swaps: Vec<usize> = Vec::new();
            for kicks in 1..=MAX_KICKS as u64 {
                let slot = self.rng.gen_range(0..b);
                let idx = bucket * b + slot;
                std::mem::swap(
                    self.slots[idx]
                        .as_mut()
                        .expect("kicked slot of a full bucket"),
                    &mut carried,
                );
                swaps.push(idx);
                bucket = self.alt_bucket(bucket, carried.key);
                if (self.counts[bucket] as usize) < b {
                    self.push_entry(bucket, carried);
                    self.record_insert_telemetry(depth, kicks);
                    return Ok(());
                }
            }
            for idx in swaps.into_iter().rev() {
                std::mem::swap(
                    self.slots[idx]
                        .as_mut()
                        .expect("rollback slot must be occupied"),
                    &mut carried,
                );
            }
            self.instruments.kick_depth.observe(MAX_KICKS as u64);
            self.instruments.rollbacks.inc();
            self.instruments.insert_failures.inc();
            return Err(TableFull::at(self.load_factor()));
        }
        self.instruments.insert_failures.inc();
        Err(TableFull::at(self.load_factor()))
    }

    /// Record the per-insert distributions: how far the chain walk went and how many
    /// kick rounds the final placement needed.
    #[inline]
    fn record_insert_telemetry(&self, chain_depth: usize, kicks: u64) {
        self.instruments.inserts.inc();
        self.instruments
            .chain_walk_depth
            .observe(chain_depth as u64);
        self.instruments.kick_depth.observe(kicks);
    }

    /// All values stored for a key, walking the chain as far as saturated pairs lead.
    ///
    /// Long chains can revisit a bucket that an earlier pair already covered (chain
    /// pairs are not disjoint); the walk's continuation test deliberately uses the same
    /// per-pair count the insertion used, but each physical slot is reported only once.
    pub fn get_all(&self, key: u64) -> Vec<&V> {
        let mut out = Vec::new();
        let mut seen_buckets = std::collections::HashSet::new();
        let mut l = self.primary_bucket(key);
        for depth in 0..WALK_SAFETY_CAP {
            let l_alt = self.alt_bucket(l, key);
            let buckets: &[usize] = if l == l_alt { &[l] } else { &[l, l_alt] };
            let mut count = 0usize;
            for &bkt in buckets {
                let first_visit = seen_buckets.insert(bkt);
                for slot in self.bucket_entries(bkt) {
                    if slot.key == key {
                        count += 1;
                        if first_visit {
                            out.push(&slot.value);
                        }
                    }
                }
            }
            if count >= self.max_dupes {
                l = self.next_chain_bucket(l, l_alt, key, depth);
            } else {
                break;
            }
        }
        out
    }

    /// Whether the key has at least one entry.
    pub fn contains_key(&self, key: u64) -> bool {
        let l = self.primary_bucket(key);
        let l_alt = self.alt_bucket(l, key);
        self.bucket_entries(l).any(|s| s.key == key)
            || self.bucket_entries(l_alt).any(|s| s.key == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stores_far_more_duplicates_than_a_bucket_pair() {
        // The plain table caps a key at 2b = 8 copies; chaining stores hundreds.
        let mut t: ChainedCuckooTable<u32> = ChainedCuckooTable::new(256, 4, 3, 1);
        for i in 0..300u32 {
            t.insert(42, i).unwrap();
        }
        let mut values: Vec<u32> = t.get_all(42).into_iter().copied().collect();
        values.sort_unstable();
        assert_eq!(values.len(), 300);
        assert_eq!(values, (0..300).collect::<Vec<u32>>());
    }

    #[test]
    fn exact_multimap_semantics_across_many_keys() {
        let mut t: ChainedCuckooTable<u64> = ChainedCuckooTable::new(1 << 10, 6, 3, 2);
        // Skewed duplication: key k gets (k % 17) + 1 values.
        for key in 0..500u64 {
            for i in 0..=(key % 17) {
                t.insert(key, key * 1000 + i).unwrap();
            }
        }
        for key in 0..500u64 {
            let mut got: Vec<u64> = t.get_all(key).into_iter().copied().collect();
            got.sort_unstable();
            let expected: Vec<u64> = (0..=(key % 17)).map(|i| key * 1000 + i).collect();
            assert_eq!(got, expected, "wrong value set for key {key}");
            assert!(t.contains_key(key));
        }
        assert!(!t.contains_key(10_000));
    }

    #[test]
    fn no_false_entries_for_absent_keys() {
        let mut t: ChainedCuckooTable<u8> = ChainedCuckooTable::new(128, 4, 3, 3);
        for key in 0..200u64 {
            t.insert(key, key as u8).unwrap();
        }
        // Full keys are compared, so absent keys return nothing — ever.
        for key in 1_000..2_000u64 {
            assert!(t.get_all(key).is_empty());
            assert!(!t.contains_key(key));
        }
    }

    #[test]
    fn sustains_a_high_load_factor_with_duplicates() {
        let mut t: ChainedCuckooTable<u32> = ChainedCuckooTable::new(512, 6, 3, 4);
        let mut inserted = 0u32;
        'outer: for key in 0u64.. {
            for i in 0..10u32 {
                if t.insert(key, i).is_err() {
                    break 'outer;
                }
                inserted += 1;
            }
        }
        assert!(inserted > 0);
        assert!(
            t.load_factor() > 0.8,
            "chained table failed at load factor {}",
            t.load_factor()
        );
    }

    #[test]
    fn failed_insert_leaves_table_unchanged() {
        let mut t: ChainedCuckooTable<u64> = ChainedCuckooTable::new(4, 2, 2, 5);
        let mut stored = Vec::new();
        let mut failed = false;
        for key in 0..64u64 {
            match t.insert(key, key * 7) {
                Ok(()) => stored.push(key),
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        assert!(failed, "a 16-slot table must eventually fill");
        for key in stored {
            assert_eq!(t.get_all(key), vec![&(key * 7)]);
        }
    }

    #[test]
    fn telemetry_tracks_chain_walks_and_rollbacks() {
        let telemetry = Telemetry::enabled();
        let mut t: ChainedCuckooTable<u32> = ChainedCuckooTable::new(256, 4, 3, 1);
        t.attach_telemetry(&telemetry, &[]);
        for i in 0..300u32 {
            t.insert(42, i).unwrap();
        }
        let labels = [("structure", "chained_table")];
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("cuckoo_inserts_total", &labels), Some(300));
        let walks = snap.histogram("cuckoo_chain_walk_depth", &labels).unwrap();
        assert_eq!(walks.count(), 300);
        assert!(
            walks.sum > 0,
            "300 copies of one key must walk past the primary pair"
        );
        assert_eq!(snap.counter("cuckoo_rollbacks_total", &labels), Some(0));

        // Drive a tiny table to failure: the undone kick chain must count.
        let mut small: ChainedCuckooTable<u64> = ChainedCuckooTable::new(4, 2, 2, 5);
        small.attach_telemetry(&telemetry, &[("size", "tiny")]);
        assert!(
            (0..64u64).any(|key| small.insert(key, key).is_err()),
            "a 16-slot table must eventually fill"
        );
        let tiny = [("structure", "chained_table"), ("size", "tiny")];
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("cuckoo_rollbacks_total", &tiny), Some(1));
        assert_eq!(snap.counter("cuckoo_insert_failures_total", &tiny), Some(1));
    }

    #[test]
    #[should_panic(expected = "max_dupes cannot exceed")]
    fn rejects_impossible_duplicate_caps() {
        let _: ChainedCuckooTable<u8> = ChainedCuckooTable::new(8, 2, 5, 0);
    }

    #[test]
    fn table_full_rounds_load_factor_at_the_half_milli_boundary() {
        // 1/16 = 62.5 thousandths, exactly representable in binary, so this sits
        // precisely on the .5-millis boundary: rounding reports 63 where the flooring
        // cast this constructor replaced reported 62.
        assert_eq!(TableFull::at(1.0 / 16.0).load_factor_millis, 63);
        // Sanity off the boundary in both directions.
        assert_eq!(TableFull::at(0.062).load_factor_millis, 62);
        assert_eq!(TableFull::at(0.9994).load_factor_millis, 999);
        assert_eq!(TableFull::at(1.0).load_factor_millis, 1000);
    }

    #[test]
    fn failed_insert_reports_rounded_load_factor() {
        // Drive a tiny table to an actual kick-loop failure and check the error agrees
        // with the shared constructor (i.e. the failure path cannot floor again).
        let mut t: ChainedCuckooTable<u64> = ChainedCuckooTable::new(4, 2, 2, 5);
        let err = (0..64u64)
            .find_map(|key| t.insert(key, key).err())
            .expect("a 16-slot table must eventually fill");
        assert_eq!(err, TableFull::at(t.load_factor()));
    }
}
