//! Semi-sorting bucket compression (§4.2).
//!
//! "In order to further reduce the number of bits per item needed to achieve a target
//! FPR, the entries in the bucket can be sorted. This reduces the entropy of the bucket
//! and allows for a more efficient encoding. This can be done efficiently if only 4-bit
//! prefixes of the fingerprints are sorted."
//!
//! With `b = 4` entries per bucket, the sorted multiset of four 4-bit prefixes has
//! C(16 + 4 − 1, 4) = 3876 possible values, which fits in 12 bits instead of 16 — one
//! bit saved per entry, turning the cuckoo filter's `(log2(1/ρ) + 3)/β` bits per item
//! into `(log2(1/ρ) + 2)/β`. The paper only uses this in its bit-efficiency analysis
//! (Figure 5 / §10.2), so this module provides the codec plus the size accounting.

/// Number of distinct sorted multisets of `b` values drawn from an alphabet of size
/// `a`: C(a + b − 1, b).
pub fn multiset_count(alphabet: usize, b: usize) -> u64 {
    // Small values only (a=16, b<=8): direct binomial is fine in u64/u128.
    let n = (alphabet + b - 1) as u128;
    let k = b as u128;
    let mut num: u128 = 1;
    let mut den: u128 = 1;
    for i in 0..k {
        num *= n - i;
        den *= i + 1;
    }
    (num / den) as u64
}

/// Bits needed to encode the sorted 4-bit prefixes of a bucket of `b` entries.
pub fn sorted_prefix_bits(b: usize) -> u32 {
    let count = multiset_count(16, b);
    64 - (count - 1).leading_zeros()
}

/// Bits saved per entry by the semi-sorting encoding relative to storing `b` raw 4-bit
/// prefixes: the raw cost is 4 bits per entry, the encoded cost
/// [`sorted_prefix_bits`]`(b) / b`.
pub fn bits_saved_per_entry(b: usize) -> f64 {
    4.0 - sorted_prefix_bits(b) as f64 / b as f64
}

/// Encode the 4-bit prefixes of a bucket's `b` fingerprints as a single index into the
/// lexicographically ordered list of sorted multisets. Returns the index and the sorted
/// prefixes (the remainder of each fingerprint must be stored separately and
/// re-associated by sort order).
pub fn encode_prefixes(fingerprints: &[u16]) -> (u64, Vec<u8>) {
    let mut prefixes: Vec<u8> = fingerprints.iter().map(|&f| (f & 0xF) as u8).collect();
    prefixes.sort_unstable();
    (rank_of_sorted_multiset(&prefixes), prefixes)
}

/// Decode an index produced by [`encode_prefixes`] back into the sorted prefixes.
pub fn decode_prefixes(mut rank: u64, b: usize) -> Vec<u8> {
    // Enumerate sorted multisets of length b over 0..16 in lexicographic order and
    // invert the ranking combinatorially.
    let mut out = Vec::with_capacity(b);
    let mut min = 0u8;
    for pos in 0..b {
        let remaining = b - pos - 1;
        for v in min..16 {
            // Number of sorted multisets of length `remaining` with values >= v.
            let count = multiset_count((16 - v) as usize, remaining);
            if rank < count {
                out.push(v);
                min = v;
                break;
            }
            rank -= count;
        }
    }
    out
}

/// Rank of a sorted multiset (ascending) among all sorted multisets of the same length
/// over 0..16, in lexicographic order.
fn rank_of_sorted_multiset(sorted: &[u8]) -> u64 {
    let b = sorted.len();
    let mut rank = 0u64;
    let mut min = 0u8;
    for (pos, &x) in sorted.iter().enumerate() {
        let remaining = b - pos - 1;
        for v in min..x {
            rank += multiset_count((16 - v) as usize, remaining);
        }
        min = x;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiset_count_matches_paper_figure() {
        // b = 4, 4-bit prefixes: 3876 combinations, fitting in 12 bits.
        assert_eq!(multiset_count(16, 4), 3876);
        assert_eq!(sorted_prefix_bits(4), 12);
        // One bit saved per entry relative to 4 raw prefixes (16 bits).
        assert!((bits_saved_per_entry(4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bits_saved_per_entry_varies_with_bucket_size() {
        // b = 2: C(17, 2) = 136 multisets → 8 bits, no saving over 2·4 raw bits.
        assert_eq!(multiset_count(16, 2), 136);
        assert_eq!(sorted_prefix_bits(2), 8);
        assert!((bits_saved_per_entry(2) - 0.0).abs() < 1e-12);
        // b = 4: 3876 → 12 bits, exactly 1 bit per entry (the paper's setting).
        assert!((bits_saved_per_entry(4) - 1.0).abs() < 1e-12);
        // b = 8: C(23, 8) = 490314 → 19 bits, 4 − 19/8 = 1.625 bits per entry.
        assert_eq!(multiset_count(16, 8), 490_314);
        assert_eq!(sorted_prefix_bits(8), 19);
        assert!((bits_saved_per_entry(8) - 1.625).abs() < 1e-12);
        // The saving grows with b (larger buckets sort away more entropy).
        assert!(bits_saved_per_entry(8) > bits_saved_per_entry(4));
        assert!(bits_saved_per_entry(4) > bits_saved_per_entry(2));
    }

    #[test]
    fn encode_decode_roundtrip_all_small_cases() {
        // Exhaustively roundtrip every sorted multiset for b = 2 (136 of them) and a
        // sample for b = 4.
        for a in 0..16u16 {
            for b in a..16u16 {
                let (rank, sorted) = encode_prefixes(&[b, a]);
                assert_eq!(decode_prefixes(rank, 2), sorted);
            }
        }
        let samples: [[u16; 4]; 5] = [
            [0, 0, 0, 0],
            [15, 15, 15, 15],
            [1, 7, 7, 12],
            [3, 3, 9, 14],
            [0, 5, 10, 15],
        ];
        for s in samples {
            let (rank, sorted) = encode_prefixes(&s);
            assert!(rank < 3876);
            assert_eq!(decode_prefixes(rank, 4), sorted);
        }
    }

    #[test]
    fn ranks_are_unique_for_b4() {
        let mut seen = std::collections::HashSet::new();
        for a in 0..16u16 {
            for b in a..16 {
                for c in b..16 {
                    for d in c..16 {
                        let (rank, _) = encode_prefixes(&[d, b, a, c]);
                        assert!(seen.insert(rank), "duplicate rank {rank}");
                    }
                }
            }
        }
        assert_eq!(seen.len(), 3876);
    }

    #[test]
    fn encode_ignores_input_order_and_high_bits() {
        // Only the 4-bit prefixes matter and order is canonicalized by sorting.
        let (r1, _) = encode_prefixes(&[0x012, 0x345, 0x678, 0x9AB]);
        let (r2, _) = encode_prefixes(&[0xFF8, 0xCC5, 0x112, 0x00B]);
        assert_eq!(r1, r2);
    }
}
