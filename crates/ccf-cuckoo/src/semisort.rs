//! Semi-sorting bucket compression (§4.2): the rank codec and the compressed
//! [`SemisortBuckets`] store built on it.
//!
//! "In order to further reduce the number of bits per item needed to achieve a target
//! FPR, the entries in the bucket can be sorted. This reduces the entropy of the bucket
//! and allows for a more efficient encoding. This can be done efficiently if only 4-bit
//! prefixes of the fingerprints are sorted."
//!
//! # Prefix-width contract
//!
//! The codec operates on the **low [`PREFIX_BITS`] = 4 bits** of each 16-bit
//! fingerprint lane (`fp & 0xF`); the remaining high [`REMAINDER_BITS`] = 12 bits are
//! the *remainder*, stored verbatim and re-associated with its prefix by canonical
//! sort order. Prefixes are passed and returned as `u16` — the fingerprint type —
//! with only the low 4 bits significant, so encode and decode speak the same type.
//! An all-zero lane (the empty-slot marker κ = 0) encodes like any other value and
//! sorts first, which is what keeps the all-zero record a valid empty bucket.
//!
//! With `b = 4` entries per bucket, the sorted multiset of four 4-bit prefixes has
//! C(16 + 4 − 1, 4) = 3876 possible values, which fits in 12 bits instead of 16 — one
//! bit saved per entry, turning the cuckoo filter's `(log2(1/ρ) + 3)/β` bits per item
//! into `(log2(1/ρ) + 2)/β`. Earlier revisions used this only for the bit-efficiency
//! analysis (Figure 5 / §10.2); [`SemisortBuckets`] makes it operational as a
//! [`crate::store::BucketStore`] backend: each bucket is one `rank_bits(b) + 12·b`-bit
//! record (60 bits at `b = 4`, vs the packed layout's 64) in a contiguous bit array.

use std::sync::Arc;

use crate::packed::{broadcast, zero_lanes};
use crate::store::MAX_SEMISORT_ENTRIES;

/// Bits of each fingerprint that participate in the sorted-prefix encoding (the low
/// nibble, `fp & 0xF`).
pub const PREFIX_BITS: u32 = 4;

/// Bits of each fingerprint stored verbatim alongside the rank (`fp >> PREFIX_BITS`).
pub const REMAINDER_BITS: u32 = 16 - PREFIX_BITS;

/// Number of distinct sorted multisets of `b` values drawn from an alphabet of size
/// `a`: C(a + b − 1, b).
pub fn multiset_count(alphabet: usize, b: usize) -> u64 {
    // Small values only (a=16, b<=8): direct binomial is fine in u64/u128.
    let n = (alphabet + b - 1) as u128;
    let k = b as u128;
    let mut num: u128 = 1;
    let mut den: u128 = 1;
    for i in 0..k {
        num *= n - i;
        den *= i + 1;
    }
    (num / den) as u64
}

/// Bits needed to encode the sorted 4-bit prefixes of a bucket of `b` entries.
pub fn sorted_prefix_bits(b: usize) -> u32 {
    let count = multiset_count(16, b);
    64 - (count - 1).leading_zeros()
}

/// Bits saved per entry by the semi-sorting encoding relative to storing `b` raw 4-bit
/// prefixes: the raw cost is 4 bits per entry, the encoded cost
/// [`sorted_prefix_bits`]`(b) / b`.
pub fn bits_saved_per_entry(b: usize) -> f64 {
    4.0 - sorted_prefix_bits(b) as f64 / b as f64
}

/// Encode the 4-bit prefixes of a bucket's `b` fingerprints as a single index into the
/// lexicographically ordered list of sorted multisets. Returns the index and the sorted
/// prefixes as `u16` values in `0..16` (the remainder of each fingerprint must be
/// stored separately and re-associated by sort order — see the module-level
/// prefix-width contract).
pub fn encode_prefixes(fingerprints: &[u16]) -> (u64, Vec<u16>) {
    let mut prefixes: Vec<u16> = fingerprints.iter().map(|&f| f & 0xF).collect();
    prefixes.sort_unstable();
    (rank_of_sorted_multiset(&prefixes), prefixes)
}

/// Decode an index produced by [`encode_prefixes`] back into the sorted prefixes,
/// returned as `u16` values in `0..16` — the same fingerprint type `encode` consumes.
pub fn decode_prefixes(mut rank: u64, b: usize) -> Vec<u16> {
    // Enumerate sorted multisets of length b over 0..16 in lexicographic order and
    // invert the ranking combinatorially.
    let mut out = Vec::with_capacity(b);
    let mut min = 0u16;
    for pos in 0..b {
        let remaining = b - pos - 1;
        for v in min..16 {
            // Number of sorted multisets of length `remaining` with values >= v.
            let count = multiset_count((16 - v) as usize, remaining);
            if rank < count {
                out.push(v);
                min = v;
                break;
            }
            rank -= count;
        }
    }
    out
}

/// Rank of a sorted multiset (ascending) among all sorted multisets of the same length
/// over 0..16, in lexicographic order.
fn rank_of_sorted_multiset(sorted: &[u16]) -> u64 {
    let b = sorted.len();
    let mut rank = 0u64;
    let mut min = 0u16;
    for (pos, &x) in sorted.iter().enumerate() {
        let remaining = b - pos - 1;
        for v in min..x {
            rank += multiset_count((16 - v) as usize, remaining);
        }
        min = x;
    }
    rank
}

/// Precomputed rank tables for one bucket width `b`: O(1) decode of a rank into
/// lane-spread prefixes (for the SWAR probe) and O(b) encode of sorted prefixes into
/// a rank. Built once per store and shared across clones; a few KiB at `b = 4`
/// (3876 ranks), ~4 MiB at the maximum `b = 8` (490 314 ranks).
struct SemisortCodec {
    /// Bucket width this codec serves.
    b: usize,
    /// [`sorted_prefix_bits`]`(b)`.
    rank_bits: u32,
    /// Words of 4 prefix lanes per rank: `⌈b / 4⌉`.
    lane_words: usize,
    /// `mask(rank_bits)`, precomputed for the hot probe path.
    rank_mask: u64,
    /// `mask(12 · b)`, precomputed for the hot probe path.
    rem_mask: u64,
    /// `suffix[v·b + r]` = number of sorted multisets of length `r` with values `≥ v`
    /// (`v` in `0..=16`, `r` in `0..b`) — the prefix-sum form of the combinatorial
    /// ranking, making encode two table lookups per position.
    suffix: Vec<u64>,
    /// Per rank, `lane_words` words holding the decoded sorted prefixes spread into
    /// the low nibble of each 16-bit lane — ready to OR with the remainders for the
    /// SWAR whole-bucket compare.
    prefix_words: Vec<u64>,
}

impl std::fmt::Debug for SemisortCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SemisortCodec")
            .field("b", &self.b)
            .field("rank_bits", &self.rank_bits)
            .field("ranks", &(self.prefix_words.len() / self.lane_words))
            .finish()
    }
}

impl SemisortCodec {
    fn new(b: usize) -> Self {
        let rank_count = multiset_count(16, b) as usize;
        let lane_words = b.div_ceil(4);
        let mut suffix = vec![0u64; 17 * b];
        for r in 0..b {
            for v in (0..16usize).rev() {
                suffix[v * b + r] = suffix[(v + 1) * b + r] + multiset_count(16 - v, r);
            }
        }
        // Enumerate every sorted multiset in lexicographic (= rank) order with a
        // simple odometer instead of `rank_count` combinatorial decodes: the successor
        // of a sorted multiset increments its last position that is below 15 and
        // copies the new value into every later position.
        let mut prefix_words = vec![0u64; rank_count * lane_words];
        let mut cur = [0u8; MAX_SEMISORT_ENTRIES];
        for rank in 0..rank_count {
            for (i, &nib) in cur[..b].iter().enumerate() {
                prefix_words[rank * lane_words + i / 4] |= u64::from(nib) << (16 * (i % 4));
            }
            if let Some(bump) = cur[..b].iter().rposition(|&v| v < 15) {
                cur[bump] += 1;
                let v = cur[bump];
                cur[bump + 1..b].fill(v);
            } else {
                debug_assert_eq!(rank, rank_count - 1);
            }
        }
        let rank_bits = sorted_prefix_bits(b);
        Self {
            b,
            rank_bits,
            lane_words,
            rank_mask: mask(rank_bits),
            rem_mask: mask((REMAINDER_BITS * b as u32).min(64)),
            suffix,
            prefix_words,
        }
    }

    /// Rank of `b` fingerprints already in canonical (prefix-sorted) order.
    #[inline]
    fn rank_of(&self, sorted: &[u16]) -> u64 {
        let b = self.b;
        let mut rank = 0u64;
        let mut min = 0usize;
        for (pos, &fp) in sorted.iter().enumerate() {
            let x = usize::from(fp & 0xF);
            let r = b - pos - 1;
            rank += self.suffix[min * b + r] - self.suffix[x * b + r];
            min = x;
        }
        rank
    }

    /// Bytes of the shared decode/encode tables (constant-size metadata, reported
    /// separately from per-bucket storage).
    fn table_bytes(&self) -> usize {
        std::mem::size_of_val(self.prefix_words.as_slice())
            + std::mem::size_of_val(self.suffix.as_slice())
    }
}

/// All `m · b` fingerprint slots in one contiguous **semisort-compressed** bit array:
/// per bucket, a [`sorted_prefix_bits`]`(b)`-bit rank of the sorted 4-bit prefixes
/// followed by `b` verbatim 12-bit remainders — `rank_bits(b) + 12·b` bits per bucket
/// (60 at `b = 4`) against the packed layout's `16·b`-per-word-rounded cost, plus the
/// same one-byte-per-bucket occupancy counters as [`crate::PackedBuckets`].
///
/// # Canonical slot order
///
/// A bucket's slots are always held in `(prefix, remainder)`-sorted order — the
/// encoding *is* the sort — so empties (κ = 0) occupy the lowest slot indices and
/// every mutation re-canonicalizes. Slot indices are therefore stable only between
/// mutations of the bucket (the contract of [`crate::store::BucketStore`]); all
/// value-level operations behave identically to the packed backend.
///
/// Membership probes reuse the packed backend's SWAR kernel: the rank is decoded
/// through a precomputed lane-spread table, ORed with the remainders shifted into
/// their lanes, and compared branchlessly against the broadcast fingerprint.
#[derive(Debug, Clone)]
pub struct SemisortBuckets {
    /// The bit-packed bucket records, plus one zero pad word so any in-range bit read
    /// may touch `word + 1` unconditionally.
    words: Vec<u64>,
    /// Occupied-slot count per bucket, maintained on every mutation.
    counts: Vec<u8>,
    /// Total occupied slots, maintained on every mutation.
    occupied: usize,
    /// Slots per bucket (the `b` parameter), `1..=`[`MAX_SEMISORT_ENTRIES`].
    entries_per_bucket: usize,
    /// Bits per bucket record: `rank_bits(b) + 12·b`.
    record_bits: usize,
    /// Shared rank tables (cheap to clone: behind an `Arc`).
    codec: Arc<SemisortCodec>,
}

impl PartialEq for SemisortBuckets {
    fn eq(&self, other: &Self) -> bool {
        // The codec is a pure function of `b`; the stored bits and counters are the
        // identity of the structure.
        self.entries_per_bucket == other.entries_per_bucket
            && self.words == other.words
            && self.counts == other.counts
    }
}

impl SemisortBuckets {
    /// Create empty storage for `num_buckets` buckets of `entries_per_bucket` slots.
    ///
    /// # Panics
    /// Panics if `entries_per_bucket` is 0 or exceeds [`MAX_SEMISORT_ENTRIES`] (the
    /// rank table grows combinatorially with `b`; the paper's configurations use
    /// `b ≤ 8`).
    pub fn new(num_buckets: usize, entries_per_bucket: usize) -> Self {
        assert!(entries_per_bucket > 0, "bucket must have at least one slot");
        assert!(
            entries_per_bucket <= MAX_SEMISORT_ENTRIES,
            "semisort storage supports at most {MAX_SEMISORT_ENTRIES} entries per bucket \
             (got {entries_per_bucket}); use packed storage for wider buckets"
        );
        let codec = Arc::new(SemisortCodec::new(entries_per_bucket));
        let record_bits = codec.rank_bits as usize + REMAINDER_BITS as usize * entries_per_bucket;
        Self {
            words: vec![0; (num_buckets * record_bits).div_ceil(64) + 1],
            counts: vec![0; num_buckets],
            occupied: 0,
            entries_per_bucket,
            record_bits,
            codec,
        }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.counts.len()
    }

    /// Slots per bucket (the `b` parameter).
    pub fn entries_per_bucket(&self) -> usize {
        self.entries_per_bucket
    }

    /// Total occupied slots across all buckets — O(1), maintained not scanned.
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Occupied slots in `bucket` — O(1), maintained not scanned.
    #[inline]
    pub fn bucket_len(&self, bucket: usize) -> usize {
        usize::from(self.counts[bucket])
    }

    /// Whether every slot of `bucket` is occupied — O(1).
    #[inline]
    pub fn is_full(&self, bucket: usize) -> bool {
        usize::from(self.counts[bucket]) == self.entries_per_bucket
    }

    /// Whether `bucket` has no occupied slots — O(1).
    #[inline]
    pub fn is_bucket_empty(&self, bucket: usize) -> bool {
        self.counts[bucket] == 0
    }

    /// Per-bucket occupancy counters, one byte per bucket.
    pub fn counts(&self) -> &[u8] {
        &self.counts
    }

    /// Stored bits per bucket record: [`sorted_prefix_bits`]`(b) + 12·b`.
    pub fn record_bits(&self) -> usize {
        self.record_bits
    }

    /// Bytes of the bucket storage: the bit-packed record words plus the occupancy
    /// counters. The shared rank tables are constant-size metadata independent of the
    /// bucket count; [`SemisortBuckets::table_bytes`] reports them separately.
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of_val(self.words.as_slice()) + self.counts.len()
    }

    /// Bytes of the shared rank decode/encode tables (a pure function of `b`, shared
    /// by every clone; ~38 KiB at `b = 4`).
    pub fn table_bytes(&self) -> usize {
        self.codec.table_bytes()
    }

    /// Best-effort prefetch of `bucket`'s record words into L1. A pure performance
    /// hint for the batch kernel's prefetch pass; a no-op on non-x86_64 targets.
    #[inline(always)]
    pub fn prefetch(&self, bucket: usize) {
        crate::geometry::prefetch_index(&self.words, bucket * self.record_bits / 64);
    }

    /// Read `n ≤ 64` bits at absolute bit offset `bit` (little-endian within and
    /// across words). The pad word makes the `word + 1` access unconditionally safe.
    #[inline(always)]
    fn read_bits(&self, bit: usize, n: u32) -> u64 {
        let word = bit / 64;
        let shift = (bit % 64) as u32;
        let lo = self.words[word] >> shift;
        // Branchless two-word stitch: `(hi << 1) << (63 - shift)` equals
        // `hi << (64 - shift)` for `shift > 0` and flushes to 0 at `shift == 0`
        // (the two partial shifts total 64) without the undefined 64-bit shift.
        let hi = (self.words[word + 1] << 1) << (63 - shift);
        (lo | hi) & mask(n)
    }

    /// Unmasked 64-bit window at absolute bit offset `bit`: the caller masks out the
    /// fields it needs (the hot probe path, which owns precomputed masks).
    #[inline(always)]
    fn read_raw(&self, bit: usize) -> u64 {
        let word = bit / 64;
        let shift = (bit % 64) as u32;
        (self.words[word] >> shift) | ((self.words[word + 1] << 1) << (63 - shift))
    }

    /// Overwrite `n ≤ 64` bits at absolute bit offset `bit` with `value`.
    #[inline(always)]
    fn write_bits(&mut self, bit: usize, n: u32, value: u64) {
        debug_assert!(n == 64 || value < (1u64 << n));
        let word = bit / 64;
        let shift = (bit % 64) as u32;
        let m = mask(n);
        self.words[word] = (self.words[word] & !(m << shift)) | (value << shift);
        if shift + n > 64 {
            // The field straddles into the next word; `shift > 0` here, so the
            // complementary shifts are in range.
            let spill = mask(shift + n - 64);
            self.words[word + 1] = (self.words[word + 1] & !spill) | (value >> (64 - shift));
        }
    }

    /// Decode `bucket`'s full slot array (empties as 0) in canonical order.
    #[inline]
    fn load_slots(&self, bucket: usize) -> [u16; MAX_SEMISORT_ENTRIES] {
        let off = bucket * self.record_bits;
        let rank_bits = self.codec.rank_bits;
        let rank = self.read_bits(off, rank_bits) as usize;
        let base = rank * self.codec.lane_words;
        let mut slots = [0u16; MAX_SEMISORT_ENTRIES];
        for (i, slot) in slots[..self.entries_per_bucket].iter_mut().enumerate() {
            let nib = (self.codec.prefix_words[base + i / 4] >> (16 * (i % 4))) & 0xF;
            let rem = self.read_bits(off + rank_bits as usize + 12 * i, REMAINDER_BITS) as u16;
            *slot = (rem << PREFIX_BITS) | nib as u16;
        }
        slots
    }

    /// Canonicalize and re-encode `bucket` from a mutated slot array. Counters are the
    /// caller's responsibility (each mutation knows its own delta).
    fn store_slots(&mut self, bucket: usize, slots: &mut [u16; MAX_SEMISORT_ENTRIES]) {
        let b = self.entries_per_bucket;
        // Canonical order is (prefix, remainder)-lexicographic, which is exactly the
        // order of fp.rotate_right(4); κ = 0 (empty) sorts first.
        slots[..b].sort_unstable_by_key(|fp| fp.rotate_right(4));
        let off = bucket * self.record_bits;
        let rank_bits = self.codec.rank_bits;
        let rank = self.codec.rank_of(&slots[..b]);
        self.write_bits(off, rank_bits, rank);
        for (i, &fp) in slots[..b].iter().enumerate() {
            self.write_bits(
                off + rank_bits as usize + 12 * i,
                REMAINDER_BITS,
                u64::from(fp >> PREFIX_BITS),
            );
        }
    }

    /// Fingerprint stored at `slot` of `bucket` (0 if empty), in canonical order.
    #[inline]
    pub fn get(&self, bucket: usize, slot: usize) -> u16 {
        debug_assert!(slot < self.entries_per_bucket);
        self.load_slots(bucket)[slot]
    }

    /// Insert `fp` into `bucket`. Returns `true` on success, `false` if the bucket is
    /// full (an O(1) counter check). The bucket re-canonicalizes, so the new
    /// fingerprint lands at its sorted position, not a fixed slot.
    ///
    /// # Panics
    /// Panics (debug) if `fp == 0`, which is reserved for empty slots.
    #[inline]
    pub fn try_insert(&mut self, bucket: usize, fp: u16) -> bool {
        debug_assert_ne!(fp, 0, "fingerprint 0 is reserved for empty slots");
        if self.is_full(bucket) {
            return false;
        }
        let mut slots = self.load_slots(bucket);
        // Empties sort first, so a non-full bucket always has slot 0 empty.
        debug_assert_eq!(slots[0], 0);
        slots[0] = fp;
        self.store_slots(bucket, &mut slots);
        self.counts[bucket] += 1;
        self.occupied += 1;
        true
    }

    /// Reconstruct the 4-lane SWAR word of lane group `group` of the record at bit
    /// offset `off` whose decoded prefix table base is `base`: prefix nibbles from the
    /// table ORed with the 12-bit remainders shifted into bits 4.. of each lane.
    /// Lanes beyond `b` reconstruct as 0 and can never match a (non-zero) probe.
    #[inline(always)]
    fn probe_word(&self, off: usize, base: usize, group: usize) -> u64 {
        let prefixes = self.codec.prefix_words[base + group];
        let lanes = (self.entries_per_bucket - 4 * group).min(4);
        let rems = self.read_bits(
            off + self.codec.rank_bits as usize + 48 * group,
            (12 * lanes) as u32,
        );
        prefixes | spread_remainders(rems)
    }

    /// SWAR zero-lane mask of `bucket`'s reconstructed lanes XORed with a
    /// pre-broadcast `pattern`: non-zero iff some slot holds the probed fingerprint.
    #[inline(always)]
    fn match_word(&self, bucket: usize, pattern: u64) -> u64 {
        let off = bucket * self.record_bits;
        if self.record_bits <= 64 {
            // b ≤ 4: the whole record is one lane group and fits one fetch, so rank
            // and remainders come out of a single bit read (the hot probe path).
            let rec = self.read_raw(off);
            let rank = (rec & self.codec.rank_mask) as usize;
            let rems = (rec >> self.codec.rank_bits) & self.codec.rem_mask;
            let lanes = self.codec.prefix_words[rank] | spread_remainders(rems);
            zero_lanes(lanes ^ pattern)
        } else {
            let rank = self.read_bits(off, self.codec.rank_bits) as usize;
            let base = rank * self.codec.lane_words;
            let mut acc = 0u64;
            for group in 0..self.codec.lane_words {
                acc |= zero_lanes(self.probe_word(off, base, group) ^ pattern);
            }
            acc
        }
    }

    /// Whether `bucket` holds `fp`: decode the rank through the lane-spread table and
    /// run the same branchless SWAR compare as the packed backend.
    #[inline]
    pub fn contains(&self, bucket: usize, fp: u16) -> bool {
        self.match_word(bucket, broadcast(fp)) != 0
    }

    /// Whether either bucket of a candidate pair holds `fp` — the whole-pair
    /// membership probe.
    #[inline]
    pub fn contains_pair(&self, bucket: usize, alt: usize, fp: u16) -> bool {
        let pattern = broadcast(fp);
        self.match_word(bucket, pattern) != 0
            || (alt != bucket && self.match_word(alt, pattern) != 0)
    }

    /// Number of copies of `fp` in `bucket` (exact slot-wise count).
    pub fn count(&self, bucket: usize, fp: u16) -> usize {
        let slots = self.load_slots(bucket);
        slots[..self.entries_per_bucket]
            .iter()
            .filter(|&&s| s == fp)
            .count()
    }

    /// Remove one copy of `fp` from `bucket` (the lowest-numbered matching slot; the
    /// copies are adjacent in canonical order, so which copy is immaterial). Returns
    /// `true` if a copy was removed.
    pub fn remove_one(&mut self, bucket: usize, fp: u16) -> bool {
        debug_assert_ne!(fp, 0);
        let mut slots = self.load_slots(bucket);
        let Some(hit) = slots[..self.entries_per_bucket]
            .iter()
            .position(|&s| s == fp)
        else {
            return false;
        };
        slots[hit] = 0;
        self.store_slots(bucket, &mut slots);
        self.counts[bucket] -= 1;
        self.occupied -= 1;
        true
    }

    /// Empty `slot` of `bucket`, returning the fingerprint it held (0 if already
    /// empty). The growth remap's move primitive. The bucket re-canonicalizes:
    /// surviving entries below `slot` shift up by one (a new empty sorts to the
    /// front), entries above `slot` keep their indices — which is what lets the remap
    /// iterate slots in ascending order without revisiting or skipping an entry.
    #[inline]
    pub fn take(&mut self, bucket: usize, slot: usize) -> u16 {
        debug_assert!(slot < self.entries_per_bucket);
        let mut slots = self.load_slots(bucket);
        let prev = slots[slot];
        if prev == 0 {
            return 0;
        }
        slots[slot] = 0;
        self.store_slots(bucket, &mut slots);
        self.counts[bucket] -= 1;
        self.occupied -= 1;
        prev
    }

    /// Replace the fingerprint at `slot` of `bucket` with `fp`, returning the previous
    /// occupant — the "kick" primitive of cuckoo insertion (re-canonicalizing, as
    /// every mutation does).
    ///
    /// # Panics
    /// Panics (debug) if `fp == 0`; use [`SemisortBuckets::take`] to clear a slot.
    #[inline]
    pub fn swap(&mut self, bucket: usize, slot: usize, fp: u16) -> u16 {
        debug_assert_ne!(fp, 0);
        debug_assert!(slot < self.entries_per_bucket);
        let mut slots = self.load_slots(bucket);
        let prev = slots[slot];
        slots[slot] = fp;
        self.store_slots(bucket, &mut slots);
        if prev == 0 {
            self.counts[bucket] += 1;
            self.occupied += 1;
        }
        prev
    }

    /// Iterate over the occupied fingerprints of `bucket` in canonical order.
    pub fn iter_bucket(&self, bucket: usize) -> impl Iterator<Item = u16> {
        let slots = self.load_slots(bucket);
        (0..self.entries_per_bucket)
            .map(move |s| slots[s])
            .filter(|&fp| fp != 0)
    }

    /// The raw slots of `bucket` including empties, in canonical order.
    pub fn bucket_slots(&self, bucket: usize) -> Vec<u16> {
        self.load_slots(bucket)[..self.entries_per_bucket].to_vec()
    }

    /// Append `extra` empty buckets (capacity doubling passes `extra == num_buckets`).
    /// The all-zero record is the canonical empty bucket (rank 0 = the all-zero prefix
    /// multiset, zero remainders), so fresh zero words need no initialization pass.
    pub fn extend_buckets(&mut self, extra: usize) {
        self.counts.resize(self.counts.len() + extra, 0);
        let total_bits = self.counts.len() * self.record_bits;
        self.words.resize(total_bits.div_ceil(64) + 1, 0);
    }

    /// Recount occupancy from the raw records, bypassing the maintained counters (the
    /// drift proptests compare this against [`SemisortBuckets::occupied`] /
    /// [`SemisortBuckets::bucket_len`]; production paths never need it).
    pub fn recount(&self) -> (usize, Vec<usize>) {
        let per_bucket: Vec<usize> = (0..self.num_buckets())
            .map(|bucket| {
                let slots = self.load_slots(bucket);
                slots[..self.entries_per_bucket]
                    .iter()
                    .filter(|&&fp| fp != 0)
                    .count()
            })
            .collect();
        (per_bucket.iter().sum(), per_bucket)
    }

    /// The raw storage words (including the trailing pad word), for zero-copy
    /// snapshot export. The record layout is a pure function of `b`, so the words
    /// alone (plus the geometry the caller already knows) are the complete identity
    /// of the store.
    pub fn raw_words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild a store from an image captured by [`SemisortBuckets::raw_words`] and
    /// [`SemisortBuckets::counts`]. The codec is rebuilt from `entries_per_bucket`
    /// (it is a pure function of `b`). Validates the image shape and that the
    /// persisted counters agree with a full [`SemisortBuckets::recount`] of the
    /// decoded records, so a corrupted or mismatched image is rejected instead of
    /// producing a store whose O(1) occupancy answers disagree with its contents.
    pub fn from_raw_parts(
        num_buckets: usize,
        entries_per_bucket: usize,
        words: Vec<u64>,
        counts: Vec<u8>,
    ) -> Result<Self, crate::store::StoreImportError> {
        use crate::store::StoreImportError;
        if entries_per_bucket == 0 || entries_per_bucket > MAX_SEMISORT_ENTRIES {
            return Err(StoreImportError::UnsupportedBucketWidth { entries_per_bucket });
        }
        let codec = Arc::new(SemisortCodec::new(entries_per_bucket));
        let record_bits = codec.rank_bits as usize + REMAINDER_BITS as usize * entries_per_bucket;
        let expected_words = (num_buckets * record_bits).div_ceil(64) + 1;
        if words.len() != expected_words {
            return Err(StoreImportError::WordLenMismatch {
                expected: expected_words,
                got: words.len(),
            });
        }
        if counts.len() != num_buckets {
            return Err(StoreImportError::CountLenMismatch {
                expected: num_buckets,
                got: counts.len(),
            });
        }
        if let Some((bucket, &got)) = counts
            .iter()
            .enumerate()
            .find(|&(_, &c)| usize::from(c) > entries_per_bucket)
        {
            return Err(StoreImportError::CountOutOfRange {
                bucket,
                got,
                max: entries_per_bucket,
            });
        }
        let store = Self {
            words,
            occupied: counts.iter().map(|&c| usize::from(c)).sum(),
            counts,
            entries_per_bucket,
            record_bits,
            codec,
        };
        let (_, derived) = store.recount();
        for (bucket, (&stored, derived)) in store.counts.iter().zip(&derived).enumerate() {
            if usize::from(stored) != *derived {
                return Err(StoreImportError::OccupancyMismatch {
                    bucket,
                    stored: usize::from(stored),
                    derived: *derived,
                });
            }
        }
        Ok(store)
    }
}

/// Spread up to four packed 12-bit remainders into bits 4.. of the four 16-bit SWAR
/// lanes (bits 0..4 of each lane stay clear for the decoded prefix nibbles).
#[inline(always)]
fn spread_remainders(rems: u64) -> u64 {
    ((rems & 0xFFF) << 4)
        | (((rems >> 12) & 0xFFF) << 20)
        | (((rems >> 24) & 0xFFF) << 36)
        | (((rems >> 36) & 0xFFF) << 52)
}

/// Low `n` bits set (`n ≤ 64`).
#[inline(always)]
fn mask(n: u32) -> u64 {
    if n == 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiset_count_matches_paper_figure() {
        // b = 4, 4-bit prefixes: 3876 combinations, fitting in 12 bits.
        assert_eq!(multiset_count(16, 4), 3876);
        assert_eq!(sorted_prefix_bits(4), 12);
        // One bit saved per entry relative to 4 raw prefixes (16 bits).
        assert!((bits_saved_per_entry(4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bits_saved_per_entry_varies_with_bucket_size() {
        // b = 2: C(17, 2) = 136 multisets → 8 bits, no saving over 2·4 raw bits.
        assert_eq!(multiset_count(16, 2), 136);
        assert_eq!(sorted_prefix_bits(2), 8);
        assert!((bits_saved_per_entry(2) - 0.0).abs() < 1e-12);
        // b = 4: 3876 → 12 bits, exactly 1 bit per entry (the paper's setting).
        assert!((bits_saved_per_entry(4) - 1.0).abs() < 1e-12);
        // b = 8: C(23, 8) = 490314 → 19 bits, 4 − 19/8 = 1.625 bits per entry.
        assert_eq!(multiset_count(16, 8), 490_314);
        assert_eq!(sorted_prefix_bits(8), 19);
        assert!((bits_saved_per_entry(8) - 1.625).abs() < 1e-12);
        // The saving grows with b (larger buckets sort away more entropy).
        assert!(bits_saved_per_entry(8) > bits_saved_per_entry(4));
        assert!(bits_saved_per_entry(4) > bits_saved_per_entry(2));
    }

    #[test]
    fn encode_decode_roundtrip_all_small_cases() {
        // Exhaustively roundtrip every sorted multiset for b = 2 (136 of them) and a
        // sample for b = 4.
        for a in 0..16u16 {
            for b in a..16u16 {
                let (rank, sorted) = encode_prefixes(&[b, a]);
                assert_eq!(decode_prefixes(rank, 2), sorted);
            }
        }
        let samples: [[u16; 4]; 5] = [
            [0, 0, 0, 0],
            [15, 15, 15, 15],
            [1, 7, 7, 12],
            [3, 3, 9, 14],
            [0, 5, 10, 15],
        ];
        for s in samples {
            let (rank, sorted) = encode_prefixes(&s);
            assert!(rank < 3876);
            assert_eq!(decode_prefixes(rank, 4), sorted);
        }
    }

    #[test]
    fn ranks_are_unique_for_b4() {
        let mut seen = std::collections::HashSet::new();
        for a in 0..16u16 {
            for b in a..16 {
                for c in b..16 {
                    for d in c..16 {
                        let (rank, _) = encode_prefixes(&[d, b, a, c]);
                        assert!(seen.insert(rank), "duplicate rank {rank}");
                    }
                }
            }
        }
        assert_eq!(seen.len(), 3876);
    }

    #[test]
    fn encode_ignores_input_order_and_high_bits() {
        // Only the 4-bit prefixes matter and order is canonicalized by sorting.
        let (r1, _) = encode_prefixes(&[0x012, 0x345, 0x678, 0x9AB]);
        let (r2, _) = encode_prefixes(&[0xFF8, 0xCC5, 0x112, 0x00B]);
        assert_eq!(r1, r2);
    }

    #[test]
    fn codec_tables_agree_with_the_combinatorial_codec() {
        // The precomputed lane-spread table and suffix-sum ranker must agree with the
        // public combinatorial codec at every rank, for every supported bucket width
        // that stays cheap to sweep exhaustively.
        for b in 1..=4usize {
            let codec = SemisortCodec::new(b);
            for rank in 0..multiset_count(16, b) {
                let expected = decode_prefixes(rank, b);
                let base = rank as usize * codec.lane_words;
                let decoded: Vec<u16> = (0..b)
                    .map(|i| ((codec.prefix_words[base + i / 4] >> (16 * (i % 4))) & 0xF) as u16)
                    .collect();
                assert_eq!(decoded, expected, "b={b} rank={rank}");
                assert_eq!(codec.rank_of(&decoded), rank, "b={b} rank={rank}");
            }
        }
    }

    #[test]
    fn record_bits_beat_packed_words() {
        // b = 4: 12-bit rank + 4×12-bit remainders = 60 bits vs the packed word's 64.
        let s = SemisortBuckets::new(8, 4);
        assert_eq!(s.record_bits(), 60);
        // b = 8: 19 + 96 = 115 bits vs the packed layout's 128.
        assert_eq!(SemisortBuckets::new(8, 8).record_bits(), 115);
        // b = 2: 8 + 24 = 32 bits vs a half-used 64-bit word.
        assert_eq!(SemisortBuckets::new(8, 2).record_bits(), 32);
    }

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut s = SemisortBuckets::new(4, 4);
        assert!(s.try_insert(1, 0xABC));
        assert!(s.try_insert(1, 0x00B));
        assert!(s.try_insert(1, 0xABC));
        assert_eq!(s.bucket_len(1), 3);
        assert!(s.contains(1, 0xABC) && s.contains(1, 0x00B));
        assert!(!s.contains(1, 0xABD) && !s.contains(1, 0xAB));
        assert_eq!(s.count(1, 0xABC), 2);
        assert!(s.remove_one(1, 0xABC));
        assert_eq!(s.count(1, 0xABC), 1);
        assert!(s.remove_one(1, 0xABC));
        assert!(!s.remove_one(1, 0xABC));
        assert!(s.contains(1, 0x00B));
        assert_eq!(s.occupied(), 1);
    }

    #[test]
    fn slots_stay_canonically_sorted() {
        let mut s = SemisortBuckets::new(2, 4);
        // Prefix order, not value order: 0x021 (prefix 1) sorts before 0x012
        // (prefix 2) even though 0x012 < 0x021 as integers.
        for fp in [0x012u16, 0x021, 0xFF1] {
            assert!(s.try_insert(0, fp));
        }
        assert_eq!(s.bucket_slots(0), vec![0, 0x021, 0xFF1, 0x012]);
        // Removal and reinsertion keep the canonical order.
        assert!(s.remove_one(0, 0x021));
        assert_eq!(s.bucket_slots(0), vec![0, 0, 0xFF1, 0x012]);
    }

    #[test]
    fn full_bucket_rejects_and_neighbors_are_untouched() {
        let mut s = SemisortBuckets::new(3, 2);
        assert!(s.try_insert(1, 1));
        assert!(s.try_insert(1, 2));
        assert!(s.is_full(1));
        assert!(!s.try_insert(1, 3));
        assert!(s.is_bucket_empty(0) && s.is_bucket_empty(2));
        assert_eq!(s.occupied(), 2);
    }

    #[test]
    fn swap_and_take_maintain_counters_and_canonical_order() {
        let mut s = SemisortBuckets::new(1, 4);
        for fp in [0x101u16, 0x202, 0x303, 0x404] {
            assert!(s.try_insert(0, fp));
        }
        // Swap out whatever canonical slot 2 holds.
        let victim = s.get(0, 2);
        assert_eq!(s.swap(0, 2, 0x505), victim);
        assert!(!s.contains(0, victim));
        assert!(s.contains(0, 0x505));
        assert_eq!(s.bucket_len(0), 4);
        // Take drains one slot; a new empty sorts to the front.
        let taken = s.take(0, 3);
        assert_ne!(taken, 0);
        assert_eq!(s.bucket_len(0), 3);
        assert_eq!(s.get(0, 0), 0);
        assert_eq!(s.take(0, 0), 0, "taking an empty slot yields 0");
        // Swapping into an empty slot occupies it.
        assert_eq!(s.swap(0, 0, 0x666), 0);
        assert_eq!(s.bucket_len(0), 4);
    }

    #[test]
    fn extend_buckets_appends_canonical_empty_records() {
        let mut s = SemisortBuckets::new(2, 4);
        assert!(s.try_insert(1, 0x99));
        s.extend_buckets(2);
        assert_eq!(s.num_buckets(), 4);
        assert!(s.is_bucket_empty(2) && s.is_bucket_empty(3));
        assert_eq!(s.bucket_slots(3), vec![0, 0, 0, 0]);
        assert!(s.contains(1, 0x99));
        // The fresh buckets accept inserts (their records decode as rank 0).
        assert!(s.try_insert(3, 0x77));
        assert!(s.contains(3, 0x77));
        let (total, _) = s.recount();
        assert_eq!(total, s.occupied());
    }

    #[test]
    fn records_straddle_word_boundaries_without_corruption() {
        // b = 4 → 60-bit records: bucket k starts at bit 60k, so every second record
        // straddles a word boundary. Fill many buckets and verify per-bucket isolation.
        let mut s = SemisortBuckets::new(64, 4);
        for bucket in 0..64 {
            for copy in 0..4u16 {
                assert!(s.try_insert(bucket, 0x100 + bucket as u16 * 4 + copy));
            }
        }
        for bucket in 0..64usize {
            for copy in 0..4u16 {
                let fp = 0x100 + bucket as u16 * 4 + copy;
                assert!(s.contains(bucket, fp), "bucket {bucket} lost {fp:#x}");
                assert_eq!(s.count(bucket, fp), 1);
            }
            assert!(!s.contains(bucket, 0x099), "bucket {bucket} false positive");
        }
        let (total, per_bucket) = s.recount();
        assert_eq!(total, 256);
        assert!(per_bucket.iter().all(|&n| n == 4));
    }

    #[test]
    fn all_bucket_widths_roundtrip_adversarial_values() {
        // Every supported b, including rank fields that straddle words (b = 8 has
        // 115-bit records), against boundary fingerprint values.
        for b in 1..=MAX_SEMISORT_ENTRIES {
            let mut s = SemisortBuckets::new(7, b);
            let fps: Vec<u16> = [
                0x0001u16, 0xFFFF, 0x8000, 0x7FFF, 0x000F, 0xFFF0, 0x0010, 0x1000,
            ][..b]
                .to_vec();
            for &fp in &fps {
                assert!(s.try_insert(5, fp), "b={b}: insert {fp:#x}");
            }
            assert!(s.is_full(5), "b={b}");
            for &fp in &fps {
                assert!(s.contains(5, fp), "b={b}: lost {fp:#x}");
                assert!(s.contains_pair(5, 6, fp));
            }
            for absent in [0x0002u16, 0xFFFE, 0x8001, 0x00F0] {
                if !fps.contains(&absent) {
                    assert!(!s.contains(5, absent), "b={b}: false hit {absent:#x}");
                }
            }
            for &fp in &fps {
                assert!(s.remove_one(5, fp));
            }
            assert!(s.is_bucket_empty(5), "b={b}");
        }
    }

    #[test]
    fn heap_bytes_report_the_compression() {
        // At b = 4 and large m: packed spends 64 + 8 bits per bucket, semisort
        // 60 + 8 — exactly bits_saved_per_entry(4) = 1 bit per slot cheaper.
        let m = 1 << 12;
        let packed = crate::PackedBuckets::new(m, 4);
        let semi = SemisortBuckets::new(m, 4);
        let packed_bits_per_slot = packed.heap_bytes() as f64 * 8.0 / (m * 4) as f64;
        let semi_bits_per_slot = semi.heap_bytes() as f64 * 8.0 / (m * 4) as f64;
        assert!(
            packed_bits_per_slot - semi_bits_per_slot >= 0.99,
            "expected ≥ 1 stored bit/entry saving, got packed {packed_bits_per_slot} \
             vs semisort {semi_bits_per_slot}"
        );
        // The shared tables are small constant-size metadata, not per-bucket storage.
        assert!(semi.table_bytes() < 64 * 1024);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        let _ = SemisortBuckets::new(4, 0);
    }

    #[test]
    #[should_panic(expected = "at most 8 entries per bucket")]
    fn oversized_buckets_rejected() {
        let _ = SemisortBuckets::new(4, 9);
    }
}
