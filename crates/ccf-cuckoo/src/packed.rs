//! Bit-packed contiguous bucket storage with SWAR whole-bucket compares.
//!
//! The word-sized predecessor of this module stored each bucket as its own
//! `Vec<u16>`, so every probe pointer-chased two heap allocations and `len()` /
//! `is_full()` rescanned all slots. [`PackedBuckets`] instead holds all `m · b`
//! fingerprint slots in one contiguous `Vec<u64>` — four 16-bit fingerprints per word,
//! one word per bucket at the paper's `b = 4` — with per-bucket occupancy counters
//! maintained on every mutation, so occupancy questions are O(1) reads instead of slot
//! scans. The layout follows the compressed contiguous arrays of *Smaller and More
//! Flexible Cuckoo Filters* (Zentgraf et al.) and the simplified bucket-compare
//! structure of *Cuckoo Filter: Simplification and Analysis* (Eppstein).
//!
//! Membership probes are branchless SWAR: a fingerprint is broadcast to all four
//! lanes, XORed against the bucket word, and the classic zero-lane trick
//! (`(x - 0x0001…) & !x & 0x8000…`) reports whether any lane matched — no per-slot
//! branch, one or two word loads per bucket. An empty slot is lane value 0, which is
//! why fingerprint derivation guarantees κ ≠ 0; padding lanes of buckets with
//! `b % 4 ≠ 0` stay 0 and can never match a query.
//!
//! Slot semantics are bit-identical to the word-sized layout: slot `s` of bucket `B`
//! lives in lane `s % 4` of word `B · ⌈b/4⌉ + s / 4`, insertion fills the
//! lowest-numbered empty slot, and removal clears the lowest-numbered matching slot.

/// 16-bit lanes per storage word.
const LANES: usize = 4;
/// Low bit of every lane.
const LANE_LSB: u64 = 0x0001_0001_0001_0001;
/// High bit of every lane.
const LANE_MSB: u64 = 0x8000_8000_8000_8000;

/// Broadcast a fingerprint into all four lanes of a word.
#[inline(always)]
pub(crate) fn broadcast(fp: u16) -> u64 {
    u64::from(fp) * LANE_LSB
}

/// SWAR zero-lane detector: nonzero iff some 16-bit lane of `x` is zero. The result's
/// set bits are lane high bits; borrow propagation can set spurious high bits in lanes
/// *above* a true zero lane, so the value is exact for existence tests and its
/// lowest set bit always marks a true zero lane (the guarantees the probe and the
/// first-empty-slot search rely on).
#[inline(always)]
pub(crate) fn zero_lanes(x: u64) -> u64 {
    x.wrapping_sub(LANE_LSB) & !x & LANE_MSB
}

/// All `m · b` fingerprint slots of a cuckoo structure in one contiguous bit-packed
/// array, with O(1) maintained occupancy counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedBuckets {
    /// `num_buckets · words_per_bucket` words, 4 lanes each; lane 0 of a word is the
    /// lowest-numbered slot it covers.
    words: Vec<u64>,
    /// Occupied-slot count per bucket, maintained on every mutation.
    counts: Vec<u8>,
    /// Total occupied slots, maintained on every mutation.
    occupied: usize,
    /// Slots per bucket (the `b` parameter).
    entries_per_bucket: usize,
    /// Words per bucket: `⌈b / 4⌉`.
    words_per_bucket: usize,
}

impl PackedBuckets {
    /// Create empty storage for `num_buckets` buckets of `entries_per_bucket` slots.
    ///
    /// # Panics
    /// Panics if `entries_per_bucket` is 0 or exceeds 255 (the occupancy counters are
    /// a byte per bucket; the paper's configurations use `b ≤ 8`).
    pub fn new(num_buckets: usize, entries_per_bucket: usize) -> Self {
        assert!(entries_per_bucket > 0, "bucket must have at least one slot");
        assert!(
            entries_per_bucket <= u8::MAX as usize,
            "entries_per_bucket exceeds the u8 occupancy counter range"
        );
        let words_per_bucket = entries_per_bucket.div_ceil(LANES);
        Self {
            words: vec![0; num_buckets * words_per_bucket],
            counts: vec![0; num_buckets],
            occupied: 0,
            entries_per_bucket,
            words_per_bucket,
        }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.counts.len()
    }

    /// Slots per bucket (the `b` parameter).
    pub fn entries_per_bucket(&self) -> usize {
        self.entries_per_bucket
    }

    /// Total occupied slots across all buckets — O(1), maintained not scanned.
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Occupied slots in `bucket` — O(1), maintained not scanned.
    #[inline]
    pub fn bucket_len(&self, bucket: usize) -> usize {
        usize::from(self.counts[bucket])
    }

    /// Whether every slot of `bucket` is occupied — O(1).
    #[inline]
    pub fn is_full(&self, bucket: usize) -> bool {
        usize::from(self.counts[bucket]) == self.entries_per_bucket
    }

    /// Whether `bucket` has no occupied slots — O(1).
    #[inline]
    pub fn is_bucket_empty(&self, bucket: usize) -> bool {
        self.counts[bucket] == 0
    }

    /// Per-bucket occupancy counts, for [`crate::OccupancyStats`] aggregation — one
    /// byte read per bucket instead of a slot scan.
    pub fn bucket_counts(&self) -> impl Iterator<Item = usize> + '_ {
        self.counts.iter().map(|&c| usize::from(c))
    }

    /// Per-bucket occupancy counters, one byte per bucket.
    pub fn counts(&self) -> &[u8] {
        &self.counts
    }

    /// Bytes of the bucket storage: the packed fingerprint words plus the occupancy
    /// counters. Measured from the live lengths, so it reflects what a right-sized
    /// allocation holds (growth may leave `Vec` capacity slack beyond this).
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of_val(self.words.as_slice()) + self.counts.len()
    }

    /// The words backing `bucket` (exposed for analysis and the batch kernel's
    /// prefetch pass).
    #[inline]
    pub fn bucket_words(&self, bucket: usize) -> &[u64] {
        let start = bucket * self.words_per_bucket;
        &self.words[start..start + self.words_per_bucket]
    }

    /// First word index of `bucket` in the backing array.
    #[inline]
    fn word_base(&self, bucket: usize) -> usize {
        bucket * self.words_per_bucket
    }

    /// Best-effort prefetch of `bucket`'s words into L1. A pure performance hint for
    /// the batch kernel's prefetch pass; a no-op on non-x86_64 targets.
    #[inline(always)]
    pub fn prefetch(&self, bucket: usize) {
        crate::geometry::prefetch_index(&self.words, self.word_base(bucket));
    }

    /// Number of lanes of word `w` (within a bucket) that are real slots rather than
    /// padding: 4 for all but a trailing partial word.
    #[inline(always)]
    fn valid_lanes(&self, word_in_bucket: usize) -> usize {
        (self.entries_per_bucket - word_in_bucket * LANES).min(LANES)
    }

    /// High-bit mask covering the first `lanes` lanes of a word.
    #[inline(always)]
    fn lane_mask(lanes: usize) -> u64 {
        LANE_MSB >> (16 * (LANES - lanes))
    }

    /// Fingerprint stored at `slot` of `bucket` (0 if empty).
    #[inline]
    pub fn get(&self, bucket: usize, slot: usize) -> u16 {
        debug_assert!(slot < self.entries_per_bucket);
        let word = self.words[self.word_base(bucket) + slot / LANES];
        (word >> (16 * (slot % LANES))) as u16
    }

    /// Overwrite `slot` of `bucket` with `fp` (0 clears it), maintaining the counters.
    /// Returns the previous occupant.
    #[inline]
    fn replace(&mut self, bucket: usize, slot: usize, fp: u16) -> u16 {
        debug_assert!(slot < self.entries_per_bucket);
        let idx = self.word_base(bucket) + slot / LANES;
        let shift = 16 * (slot % LANES);
        let word = self.words[idx];
        let prev = (word >> shift) as u16;
        self.words[idx] = (word & !(0xFFFFu64 << shift)) | (u64::from(fp) << shift);
        match (prev == 0, fp == 0) {
            (true, false) => {
                self.counts[bucket] += 1;
                self.occupied += 1;
            }
            (false, true) => {
                self.counts[bucket] -= 1;
                self.occupied -= 1;
            }
            _ => {}
        }
        prev
    }

    /// Insert `fp` into the lowest-numbered free slot of `bucket`. Returns `true` on
    /// success, `false` if the bucket is full (an O(1) counter check, not a scan).
    ///
    /// # Panics
    /// Panics (debug) if `fp == 0`, which is reserved for empty slots.
    #[inline]
    pub fn try_insert(&mut self, bucket: usize, fp: u16) -> bool {
        debug_assert_ne!(fp, 0, "fingerprint 0 is reserved for empty slots");
        if self.is_full(bucket) {
            return false;
        }
        let base = self.word_base(bucket);
        for w in 0..self.words_per_bucket {
            // The lowest flagged lane of the zero-lane mask is always a true zero;
            // restrict the search to real (non-padding) lanes.
            let mask = zero_lanes(self.words[base + w]) & Self::lane_mask(self.valid_lanes(w));
            if mask != 0 {
                let lane = mask.trailing_zeros() as usize / 16;
                self.replace(bucket, w * LANES + lane, fp);
                return true;
            }
        }
        unreachable!("occupancy counter said the bucket had a free slot");
    }

    /// Whether `bucket` holds `fp`: a branchless SWAR compare over the bucket's words
    /// (XOR + zero-lane trick), no per-slot branch.
    #[inline]
    pub fn contains(&self, bucket: usize, fp: u16) -> bool {
        let pattern = broadcast(fp);
        let base = self.word_base(bucket);
        let mut acc = 0u64;
        for w in 0..self.words_per_bucket {
            acc |= zero_lanes(self.words[base + w] ^ pattern);
        }
        acc != 0
    }

    /// Whether either bucket of a candidate pair holds `fp` — the whole-pair membership
    /// probe, branchless across both buckets (one or two word loads each at `b ≤ 4`).
    #[inline]
    pub fn contains_pair(&self, bucket: usize, alt: usize, fp: u16) -> bool {
        let pattern = broadcast(fp);
        let (b1, b2) = (self.word_base(bucket), self.word_base(alt));
        let mut acc = 0u64;
        for w in 0..self.words_per_bucket {
            acc |= zero_lanes(self.words[b1 + w] ^ pattern);
            acc |= zero_lanes(self.words[b2 + w] ^ pattern);
        }
        acc != 0
    }

    /// Number of copies of `fp` in `bucket` (exact slot-wise count; the SWAR mask is
    /// existence-exact but not count-exact, so this stays a lane walk).
    pub fn count(&self, bucket: usize, fp: u16) -> usize {
        (0..self.entries_per_bucket)
            .filter(|&s| self.get(bucket, s) == fp)
            .count()
    }

    /// Remove one copy of `fp` from `bucket` (the lowest-numbered matching slot).
    /// Returns `true` if a copy was removed.
    pub fn remove_one(&mut self, bucket: usize, fp: u16) -> bool {
        debug_assert_ne!(fp, 0);
        let pattern = broadcast(fp);
        let base = self.word_base(bucket);
        for w in 0..self.words_per_bucket {
            // Padding lanes hold 0 ≠ fp, so the lowest flagged lane is a true match
            // in a real slot.
            let mask = zero_lanes(self.words[base + w] ^ pattern);
            if mask != 0 {
                let lane = mask.trailing_zeros() as usize / 16;
                self.replace(bucket, w * LANES + lane, 0);
                return true;
            }
        }
        false
    }

    /// Empty `slot` of `bucket`, returning the fingerprint it held (0 if already
    /// empty). The growth remap's move primitive.
    #[inline]
    pub fn take(&mut self, bucket: usize, slot: usize) -> u16 {
        self.replace(bucket, slot, 0)
    }

    /// Replace the fingerprint at `slot` of `bucket` with `fp`, returning the previous
    /// occupant — the "kick" primitive of cuckoo insertion.
    ///
    /// # Panics
    /// Panics (debug) if `fp == 0`; use [`PackedBuckets::take`] to clear a slot.
    #[inline]
    pub fn swap(&mut self, bucket: usize, slot: usize, fp: u16) -> u16 {
        debug_assert_ne!(fp, 0);
        self.replace(bucket, slot, fp)
    }

    /// Iterate over the occupied fingerprints of `bucket` in slot order.
    pub fn iter_bucket(&self, bucket: usize) -> impl Iterator<Item = u16> + '_ {
        (0..self.entries_per_bucket)
            .map(move |s| self.get(bucket, s))
            .filter(|&fp| fp != 0)
    }

    /// The raw slots of `bucket` including empties, in slot order (used by snapshots,
    /// semi-sorting analysis and tests).
    pub fn bucket_slots(&self, bucket: usize) -> Vec<u16> {
        (0..self.entries_per_bucket)
            .map(|s| self.get(bucket, s))
            .collect()
    }

    /// Append `extra` empty buckets (capacity doubling passes `extra == num_buckets`).
    pub fn extend_buckets(&mut self, extra: usize) {
        self.words
            .resize(self.words.len() + extra * self.words_per_bucket, 0);
        self.counts.resize(self.counts.len() + extra, 0);
    }

    /// Recount occupancy from the raw words, bypassing the maintained counters. The
    /// drift proptests and debug assertions compare this against
    /// [`PackedBuckets::occupied`] / [`PackedBuckets::bucket_len`]; production paths
    /// never need it.
    pub fn recount(&self) -> (usize, Vec<usize>) {
        let per_bucket: Vec<usize> = (0..self.num_buckets())
            .map(|b| {
                (0..self.entries_per_bucket)
                    .filter(|&s| self.get(b, s) != 0)
                    .count()
            })
            .collect();
        (per_bucket.iter().sum(), per_bucket)
    }

    /// The raw storage words, for zero-copy snapshot export. The lane/slot layout is
    /// fixed by the module-level contract, so the words alone (plus the geometry the
    /// caller already knows) are the complete identity of the store.
    pub fn raw_words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild a store from an image captured by [`PackedBuckets::raw_words`] and
    /// [`PackedBuckets::counts`]. Validates the image shape and that the persisted
    /// counters agree with a full [`PackedBuckets::recount`] of the words, so a
    /// corrupted or mismatched image is rejected instead of producing a store whose
    /// O(1) occupancy answers disagree with its contents.
    pub fn from_raw_parts(
        num_buckets: usize,
        entries_per_bucket: usize,
        words: Vec<u64>,
        counts: Vec<u8>,
    ) -> Result<Self, crate::store::StoreImportError> {
        use crate::store::StoreImportError;
        if entries_per_bucket == 0 || entries_per_bucket > u8::MAX as usize {
            return Err(StoreImportError::UnsupportedBucketWidth { entries_per_bucket });
        }
        let words_per_bucket = entries_per_bucket.div_ceil(LANES);
        if words.len() != num_buckets * words_per_bucket {
            return Err(StoreImportError::WordLenMismatch {
                expected: num_buckets * words_per_bucket,
                got: words.len(),
            });
        }
        if counts.len() != num_buckets {
            return Err(StoreImportError::CountLenMismatch {
                expected: num_buckets,
                got: counts.len(),
            });
        }
        if let Some((bucket, &got)) = counts
            .iter()
            .enumerate()
            .find(|&(_, &c)| usize::from(c) > entries_per_bucket)
        {
            return Err(StoreImportError::CountOutOfRange {
                bucket,
                got,
                max: entries_per_bucket,
            });
        }
        let store = Self {
            words,
            occupied: counts.iter().map(|&c| usize::from(c)).sum(),
            counts,
            entries_per_bucket,
            words_per_bucket,
        };
        let (_, derived) = store.recount();
        for (bucket, (&stored, derived)) in store.counts.iter().zip(&derived).enumerate() {
            if usize::from(stored) != *derived {
                return Err(StoreImportError::OccupancyMismatch {
                    bucket,
                    stored: usize::from(stored),
                    derived: *derived,
                });
            }
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_until_full() {
        let mut p = PackedBuckets::new(2, 4);
        assert!(p.is_bucket_empty(0));
        for fp in 1..=4u16 {
            assert!(p.try_insert(0, fp));
        }
        assert!(p.is_full(0));
        assert_eq!(p.bucket_len(0), 4);
        assert!(!p.try_insert(0, 5));
        assert!(p.is_bucket_empty(1), "neighboring bucket untouched");
        assert_eq!(p.occupied(), 4);
    }

    #[test]
    fn contains_and_count() {
        let mut p = PackedBuckets::new(1, 4);
        p.try_insert(0, 7);
        p.try_insert(0, 7);
        p.try_insert(0, 9);
        assert!(p.contains(0, 7) && p.contains(0, 9));
        assert!(!p.contains(0, 8));
        assert_eq!(p.count(0, 7), 2);
        assert_eq!(p.count(0, 9), 1);
        assert_eq!(p.count(0, 8), 0);
    }

    #[test]
    fn contains_is_exact_for_every_lane_and_value() {
        // Exhaustive per-lane check of the SWAR compare: a fingerprint placed in any
        // slot is found; all others are rejected (sampled).
        for slot in 0..4 {
            let mut p = PackedBuckets::new(1, 4);
            for s in 0..slot {
                p.swap(0, s, 0x1111 * (s as u16 + 10));
            }
            p.swap(0, slot, 0xABC);
            assert!(p.contains(0, 0xABC), "slot {slot}");
            for probe in [1u16, 0xAB, 0xABD, 0xFFFF, 0x8000] {
                assert!(!p.contains(0, probe), "false hit for {probe:#x}");
            }
        }
    }

    #[test]
    fn adversarial_lane_values_do_not_false_positive() {
        // Values crafted to stress the borrow propagation of the zero-lane trick:
        // lanes like 0x0001/0x8000/0xFFFF adjacent to the probed value.
        let mut p = PackedBuckets::new(1, 4);
        p.swap(0, 0, 0x0001);
        p.swap(0, 1, 0x8000);
        p.swap(0, 2, 0xFFFF);
        p.swap(0, 3, 0x7FFF);
        for absent in [2u16, 0x0100, 0x8001, 0xFFFE, 0x7FFE, 0x00FF] {
            assert!(!p.contains(0, absent), "false hit for {absent:#x}");
        }
        for present in [0x0001u16, 0x8000, 0xFFFF, 0x7FFF] {
            assert!(p.contains(0, present), "missed {present:#x}");
        }
    }

    #[test]
    fn remove_one_removes_lowest_copy() {
        let mut p = PackedBuckets::new(1, 4);
        p.try_insert(0, 3);
        p.try_insert(0, 3);
        assert!(p.remove_one(0, 3));
        assert_eq!(p.count(0, 3), 1);
        assert_eq!(p.get(0, 0), 0, "lowest slot cleared first");
        assert!(p.remove_one(0, 3));
        assert!(!p.remove_one(0, 3));
        assert!(p.is_bucket_empty(0));
        assert_eq!(p.occupied(), 0);
    }

    #[test]
    fn insert_reuses_the_lowest_freed_slot() {
        let mut p = PackedBuckets::new(1, 4);
        for fp in [10u16, 20, 30, 40] {
            p.try_insert(0, fp);
        }
        p.remove_one(0, 20); // frees slot 1
        assert!(p.try_insert(0, 50));
        assert_eq!(p.bucket_slots(0), vec![10, 50, 30, 40]);
    }

    #[test]
    fn swap_and_take_round_trip() {
        let mut p = PackedBuckets::new(1, 2);
        p.try_insert(0, 10);
        assert_eq!(p.swap(0, 0, 20), 10);
        assert_eq!(p.get(0, 0), 20);
        // Swapping an empty slot returns 0 and occupies it.
        assert_eq!(p.swap(0, 1, 30), 0);
        assert_eq!(p.bucket_len(0), 2);
        assert_eq!(p.take(0, 1), 30);
        assert_eq!(p.take(0, 1), 0, "taking an empty slot yields 0");
        assert_eq!(p.bucket_len(0), 1);
    }

    #[test]
    fn non_multiple_of_four_buckets_respect_their_capacity() {
        // b = 2: lanes 2 and 3 are padding and must never be used or matched.
        let mut p = PackedBuckets::new(2, 2);
        assert!(p.try_insert(0, 1));
        assert!(p.try_insert(0, 2));
        assert!(!p.try_insert(0, 3), "padding lanes must not absorb inserts");
        assert!(p.is_full(0));
        assert!(p.contains(0, 1) && p.contains(0, 2) && !p.contains(0, 3));
        // b = 6: bucket spans two words, second word half padding.
        let mut p = PackedBuckets::new(2, 6);
        for fp in 1..=6u16 {
            assert!(p.try_insert(1, fp));
        }
        assert!(!p.try_insert(1, 7));
        assert!(p.is_full(1));
        for fp in 1..=6u16 {
            assert!(p.contains(1, fp));
        }
        assert_eq!(p.bucket_slots(1), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn iter_skips_empty_slots() {
        let mut p = PackedBuckets::new(1, 4);
        p.try_insert(0, 5);
        p.try_insert(0, 6);
        p.remove_one(0, 5);
        let v: Vec<u16> = p.iter_bucket(0).collect();
        assert_eq!(v, vec![6]);
    }

    #[test]
    fn extend_buckets_appends_empty_storage() {
        let mut p = PackedBuckets::new(2, 4);
        p.try_insert(1, 9);
        p.extend_buckets(2);
        assert_eq!(p.num_buckets(), 4);
        assert!(p.is_bucket_empty(2) && p.is_bucket_empty(3));
        assert!(p.contains(1, 9));
        assert_eq!(p.occupied(), 1);
    }

    #[test]
    fn counters_match_recount_after_mixed_mutations() {
        let mut p = PackedBuckets::new(8, 4);
        for i in 0..24u16 {
            p.try_insert(usize::from(i) % 8, i + 1);
        }
        p.remove_one(3, 4);
        p.take(0, 0);
        p.swap(1, 2, 999);
        let (total, per_bucket) = p.recount();
        assert_eq!(total, p.occupied());
        for (b, &len) in per_bucket.iter().enumerate() {
            assert_eq!(len, p.bucket_len(b), "bucket {b} counter drifted");
        }
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        let _ = PackedBuckets::new(4, 0);
    }
}
