//! An open-addressing cuckoo hash table storing full keys and values (§4.1).
//!
//! The join substrate uses this for exact hash joins and for the §10.7 comparison
//! against "a open addressing hash table \[that\] would require 429 megabytes ... if it
//! could achieve a 75 % load factor". Unlike the cuckoo *filter*, the table stores full
//! keys, so relocation rehashes the key rather than using partial-key hashing, and
//! inserting an existing key updates its value.
//!
//! The table also offers [`CuckooHashTable::insert_duplicate`], which appends another
//! (key, value) pair instead of updating — the multiset behaviour whose limitations
//! (§4.3) the CCF's chaining fixes. §11 notes the chaining technique applies to full
//! hash tables as well; that extension is [`crate::ChainedCuckooTable`].

use ccf_hash::{HashFamily, SaltedHasher};
use ccf_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::instruments::FilterInstruments;

/// Maximum kick rounds before the table grows.
const MAX_KICKS: usize = 500;

#[derive(Debug, Clone, PartialEq, Eq)]
struct Slot<V> {
    key: u64,
    value: V,
}

/// Returned by [`CuckooHashTable::insert_duplicate`] when a key already occupies every
/// slot it can reach (the `2b` cap of §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DuplicateCapacityError {
    /// The key whose bucket pair is saturated.
    pub key: u64,
    /// Number of copies already stored.
    pub copies: usize,
}

impl std::fmt::Display for DuplicateCapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "key {} already has {} copies, the maximum its bucket pair can hold",
            self.key, self.copies
        )
    }
}

impl std::error::Error for DuplicateCapacityError {}

/// An open-addressing cuckoo hash table from `u64` keys to values `V`.
///
/// Each bucket holds `b` slots; a key hashes to two candidate buckets under two
/// independent hash functions. The table resizes (doubles its bucket count and
/// rehashes) when an insertion exceeds the kick limit, giving O(1) amortized expected
/// insertion as described in §4.
#[derive(Debug, Clone)]
pub struct CuckooHashTable<V> {
    /// All `m · b` slots, flat and contiguous: bucket `B` owns
    /// `slots[B·b .. (B+1)·b]`. One allocation instead of `m + 1`, so probes touch a
    /// single cache-line range per bucket.
    slots: Vec<Option<Slot<V>>>,
    num_buckets: usize,
    entries_per_bucket: usize,
    h1: SaltedHasher,
    h2: SaltedHasher,
    len: usize,
    rng: StdRng,
    seed: u64,
    /// Event telemetry (kick depths, grows); disabled until
    /// [`CuckooHashTable::attach_telemetry`].
    instruments: FilterInstruments,
}

impl<V: Clone> CuckooHashTable<V> {
    /// Create a table with at least `initial_buckets` buckets of `entries_per_bucket`
    /// slots each.
    pub fn new(initial_buckets: usize, entries_per_bucket: usize, seed: u64) -> Self {
        assert!(
            entries_per_bucket > 0,
            "entries_per_bucket must be positive"
        );
        let m = initial_buckets.next_power_of_two().max(2);
        let family = HashFamily::new(seed);
        Self {
            slots: (0..m * entries_per_bucket).map(|_| None).collect(),
            num_buckets: m,
            entries_per_bucket,
            h1: family.hasher(0),
            h2: family.hasher(1),
            len: 0,
            rng: StdRng::seed_from_u64(seed ^ 0x7AB1E),
            seed,
            instruments: FilterInstruments::disabled(),
        }
    }

    /// Resolve this table's event instruments against `telemetry`, labelling its
    /// series `structure="cuckoo_table"` plus the caller's `extra` labels.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry, extra: &[(&str, &str)]) {
        self.instruments = FilterInstruments::resolve(telemetry, "cuckoo_table", extra);
    }

    /// Create a table sized for `capacity` items at a 75 % target load factor with
    /// `b = 4` (the configuration assumed in §10.7's raw-hash-table size estimate).
    pub fn with_capacity(capacity: usize, seed: u64) -> Self {
        let b = 4;
        let buckets = ((capacity as f64 / 0.75).ceil() as usize).div_ceil(b);
        Self::new(buckets.max(2), b, seed)
    }

    /// Number of (key, value) pairs stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of buckets currently allocated.
    pub fn num_buckets(&self) -> usize {
        self.num_buckets
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The slot range of `bucket`.
    #[inline]
    fn bucket_range(&self, bucket: usize) -> std::ops::Range<usize> {
        let base = bucket * self.entries_per_bucket;
        base..base + self.entries_per_bucket
    }

    /// Current load factor.
    pub fn load_factor(&self) -> f64 {
        self.len as f64 / self.capacity() as f64
    }

    fn candidate_buckets(&self, key: u64) -> (usize, usize) {
        let m = self.num_buckets;
        (self.h1.bucket_of(key, m), self.h2.bucket_of(key, m))
    }

    /// Insert or update: if the key exists its value is replaced (the §4.1 semantics),
    /// otherwise the pair is added. Returns the previous value if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        let (b1, b2) = self.candidate_buckets(key);
        for &b in &[b1, b2] {
            let range = self.bucket_range(b);
            for s in self.slots[range].iter_mut().flatten() {
                if s.key == key {
                    return Some(std::mem::replace(&mut s.value, value));
                }
            }
        }
        self.instruments.inserts.inc();
        self.insert_new(key, value);
        None
    }

    /// Insert another copy of the key regardless of whether it already exists
    /// (multiset behaviour). Each copy occupies its own slot.
    ///
    /// As §4.3 observes, a key can only ever probe its two candidate buckets, so at
    /// most `2b` copies fit no matter how large the table grows; attempting to insert
    /// more returns an error rather than growing forever. The CCF's chaining (§6.2)
    /// exists precisely to lift this cap.
    pub fn insert_duplicate(&mut self, key: u64, value: V) -> Result<(), DuplicateCapacityError> {
        let (b1, b2) = self.candidate_buckets(key);
        let copies = self.count_key_in(b1, key)
            + if b1 == b2 {
                0
            } else {
                self.count_key_in(b2, key)
            };
        if copies >= 2 * self.entries_per_bucket || (b1 == b2 && copies >= self.entries_per_bucket)
        {
            self.instruments.pair_saturated_failfasts.inc();
            self.instruments.insert_failures.inc();
            return Err(DuplicateCapacityError { key, copies });
        }
        self.instruments.inserts.inc();
        self.insert_new(key, value);
        Ok(())
    }

    fn count_key_in(&self, bucket: usize, key: u64) -> usize {
        self.slots[self.bucket_range(bucket)]
            .iter()
            .flatten()
            .filter(|s| s.key == key)
            .count()
    }

    fn insert_new(&mut self, key: u64, value: V) {
        let mut item = Slot { key, value };
        loop {
            match self.try_place(item) {
                Ok(()) => {
                    self.len += 1;
                    return;
                }
                Err(returned) => {
                    item = returned;
                    self.grow();
                }
            }
        }
    }

    fn try_place(&mut self, mut item: Slot<V>) -> Result<(), Slot<V>> {
        let (b1, b2) = self.candidate_buckets(item.key);
        for &b in &[b1, b2] {
            let range = self.bucket_range(b);
            for slot in &mut self.slots[range] {
                if slot.is_none() {
                    *slot = Some(item);
                    self.instruments.kick_depth.observe(0);
                    return Ok(());
                }
            }
        }
        // Kick loop.
        let mut bucket = if self.rng.gen_bool(0.5) { b1 } else { b2 };
        for kicks in 1..=MAX_KICKS as u64 {
            let slot_idx = self.rng.gen_range(0..self.entries_per_bucket);
            let victim = self.slots[bucket * self.entries_per_bucket + slot_idx]
                .replace(item)
                .expect("full bucket had an empty slot");
            item = victim;
            let (v1, v2) = self.candidate_buckets(item.key);
            bucket = if bucket == v1 { v2 } else { v1 };
            let range = self.bucket_range(bucket);
            for slot in &mut self.slots[range] {
                if slot.is_none() {
                    *slot = Some(item);
                    self.instruments.kick_depth.observe(kicks);
                    return Ok(());
                }
            }
        }
        self.instruments.kick_depth.observe(MAX_KICKS as u64);
        Err(item)
    }

    fn grow(&mut self) {
        self.instruments.grows.inc();
        let new_m = self.num_buckets * 2;
        let old = std::mem::replace(
            &mut self.slots,
            (0..new_m * self.entries_per_bucket).map(|_| None).collect(),
        );
        self.num_buckets = new_m;
        // Re-derive the hashers with a tweaked seed so pathological layouts are not
        // reproduced after the resize.
        let family = HashFamily::new(self.seed ^ (new_m as u64));
        self.h1 = family.hasher(0);
        self.h2 = family.hasher(1);
        self.len = 0;
        for slot in old.into_iter().flatten() {
            self.insert_new(slot.key, slot.value);
        }
    }

    /// The candidate buckets with the degenerate b1 == b2 case deduplicated, so scans
    /// never walk the same bucket twice.
    fn candidate_list(b1: usize, b2: usize) -> ([usize; 2], usize) {
        if b1 == b2 {
            ([b1, b2], 1)
        } else {
            ([b1, b2], 2)
        }
    }

    /// Look up the value for a key (the first stored copy if duplicates were inserted).
    pub fn get(&self, key: u64) -> Option<&V> {
        let (b1, b2) = self.candidate_buckets(key);
        let (candidates, n) = Self::candidate_list(b1, b2);
        for &b in &candidates[..n] {
            for slot in self.slots[self.bucket_range(b)].iter().flatten() {
                if slot.key == key {
                    return Some(&slot.value);
                }
            }
        }
        None
    }

    /// All values stored for a key (multiset lookups).
    pub fn get_all(&self, key: u64) -> Vec<&V> {
        let (b1, b2) = self.candidate_buckets(key);
        let (candidates, n) = Self::candidate_list(b1, b2);
        let mut out = Vec::new();
        for &b in &candidates[..n] {
            for slot in self.slots[self.bucket_range(b)].iter().flatten() {
                if slot.key == key {
                    out.push(&slot.value);
                }
            }
        }
        out
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Remove one copy of the key, returning its value.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let (b1, b2) = self.candidate_buckets(key);
        let (candidates, n) = Self::candidate_list(b1, b2);
        for &b in &candidates[..n] {
            let range = self.bucket_range(b);
            for slot in &mut self.slots[range] {
                if slot.as_ref().is_some_and(|s| s.key == key) {
                    self.len -= 1;
                    self.instruments.deletes.inc();
                    return slot.take().map(|s| s.value);
                }
            }
        }
        None
    }

    /// Iterate over all (key, value) pairs in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        self.slots.iter().flatten().map(|s| (s.key, &s.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_update() {
        let mut t: CuckooHashTable<String> = CuckooHashTable::new(4, 4, 0);
        assert!(t.insert(1, "a".into()).is_none());
        assert_eq!(t.get(1), Some(&"a".to_string()));
        assert_eq!(t.insert(1, "b".into()), Some("a".to_string()));
        assert_eq!(t.get(1), Some(&"b".to_string()));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn missing_keys_return_none() {
        let t: CuckooHashTable<u32> = CuckooHashTable::new(4, 4, 1);
        assert!(t.get(99).is_none());
        assert!(!t.contains_key(99));
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut t: CuckooHashTable<u64> = CuckooHashTable::new(2, 2, 2);
        let n = 10_000u64;
        for k in 0..n {
            t.insert(k, k * 2);
        }
        assert_eq!(t.len(), n as usize);
        for k in 0..n {
            assert_eq!(t.get(k), Some(&(k * 2)), "lost key {k}");
        }
        assert!(t.num_buckets() > 2);
    }

    #[test]
    fn remove_frees_slots() {
        let mut t: CuckooHashTable<u8> = CuckooHashTable::new(8, 4, 3);
        for k in 0..20u64 {
            t.insert(k, k as u8);
        }
        assert_eq!(t.remove(5), Some(5));
        assert_eq!(t.remove(5), None);
        assert!(!t.contains_key(5));
        assert_eq!(t.len(), 19);
    }

    #[test]
    fn duplicate_insertion_keeps_all_copies() {
        let mut t: CuckooHashTable<u32> = CuckooHashTable::new(8, 4, 4);
        t.insert_duplicate(7, 1).unwrap();
        t.insert_duplicate(7, 2).unwrap();
        t.insert_duplicate(7, 3).unwrap();
        let mut vals: Vec<u32> = t.get_all(7).into_iter().copied().collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![1, 2, 3]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn duplicates_are_capped_at_two_buckets_worth() {
        // §4.3: a key can only probe 2b entries, so at most 2b copies fit; growth
        // cannot help because the copies always collide in the same two buckets.
        let mut t: CuckooHashTable<u32> = CuckooHashTable::new(64, 4, 5);
        let mut stored = 0;
        let mut first_err = None;
        for i in 0..200u32 {
            match t.insert_duplicate(42, i) {
                Ok(()) => stored += 1,
                Err(e) => {
                    first_err = Some(e);
                    break;
                }
            }
        }
        let err = first_err.expect("duplicate insertion must eventually hit the 2b cap");
        assert!(stored <= 8, "stored {stored} copies, cap is 2b = 8");
        assert_eq!(err.key, 42);
        assert_eq!(t.get_all(42).len(), stored);
    }

    #[test]
    fn self_paired_keys_scan_their_bucket_once() {
        // With 2 buckets, half of all keys hash both candidates onto one bucket.
        // get/get_all/remove/contains_key must treat that degenerate pair as a single
        // bucket (the dedup get_all always applied) and stay mutually consistent.
        let mut t: CuckooHashTable<u32> = CuckooHashTable::new(2, 4, 8);
        let self_paired = (0..200u64)
            .find(|&k| {
                let (b1, b2) = t.candidate_buckets(k);
                b1 == b2
            })
            .expect("a 2-bucket table must self-pair some key");
        t.insert_duplicate(self_paired, 1).unwrap();
        t.insert_duplicate(self_paired, 2).unwrap();
        assert!(t.contains_key(self_paired));
        assert_eq!(t.get_all(self_paired).len(), 2, "each copy reported once");
        assert_eq!(t.get(self_paired), Some(&1));
        assert_eq!(t.remove(self_paired), Some(1));
        assert_eq!(t.get_all(self_paired), vec![&2]);
        assert_eq!(t.remove(self_paired), Some(2));
        assert_eq!(t.remove(self_paired), None);
        assert!(!t.contains_key(self_paired));
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn iter_visits_every_pair() {
        let mut t: CuckooHashTable<u64> = CuckooHashTable::new(8, 4, 6);
        for k in 0..50u64 {
            t.insert(k, k + 1000);
        }
        let mut pairs: Vec<(u64, u64)> = t.iter().map(|(k, &v)| (k, v)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs.len(), 50);
        for (i, (k, v)) in pairs.into_iter().enumerate() {
            assert_eq!(k, i as u64);
            assert_eq!(v, k + 1000);
        }
    }

    #[test]
    fn telemetry_tracks_inserts_kicks_and_grows() {
        use ccf_telemetry::Telemetry;
        let telemetry = Telemetry::enabled();
        let mut t: CuckooHashTable<u64> = CuckooHashTable::new(2, 2, 2);
        t.attach_telemetry(&telemetry, &[]);
        for k in 0..500u64 {
            t.insert(k, k);
        }
        assert_eq!(t.remove(3), Some(3));
        let labels = [("structure", "cuckoo_table")];
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("cuckoo_inserts_total", &labels), Some(500));
        assert_eq!(snap.counter("cuckoo_deletes_total", &labels), Some(1));
        assert!(
            snap.counter("cuckoo_grows_total", &labels).unwrap() >= 1,
            "500 keys into a 4-slot table must grow"
        );
        // Placement attempts (including rehash traffic during growth) all record a
        // kick depth, so the histogram has at least one observation per insert.
        let depth = snap.histogram("cuckoo_kick_depth", &labels).unwrap();
        assert!(depth.count() >= 500);
    }

    #[test]
    fn with_capacity_inserts_without_growth() {
        let mut t: CuckooHashTable<u8> = CuckooHashTable::with_capacity(1000, 7);
        let buckets_before = t.num_buckets();
        for k in 0..1000u64 {
            t.insert(k, 0);
        }
        // Growth is allowed but should be unnecessary at 75 % target load.
        assert_eq!(t.num_buckets(), buckets_before, "unexpected growth");
        assert!(t.load_factor() <= 0.78);
    }
}
