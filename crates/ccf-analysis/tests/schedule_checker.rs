//! The schedule checker must pass the real concurrent structures and catch the
//! planted racy fixture — both halves, or the checker is untrusted.

use ccf_analysis::{
    check_counter_subject, check_sharded_ccf, check_telemetry, CheckConfig, CheckFailure,
    RacyCounter, Violation,
};

fn config(seed: u64) -> CheckConfig {
    CheckConfig::for_host(seed)
}

#[test]
fn sharded_ccf_passes_the_schedule_checker() {
    let report = check_sharded_ccf(&config(0xCCF_2021)).expect("ShardedCcf is linearizable");
    assert!(report.ops > 0 && report.rounds > 0);
    assert!(report.probes_checked > 0, "phase 2 checked no probes");
}

#[test]
fn sharded_ccf_passes_with_a_second_seed() {
    // Schedules are seed-derived; a second seed exercises different op mixes
    // and key pools.
    check_sharded_ccf(&config(0x5EED_0002)).expect("ShardedCcf is linearizable (seed 2)");
}

#[test]
fn telemetry_passes_the_schedule_checker() {
    let report = check_telemetry(&config(0x07E1_ECCF)).expect("telemetry matches ground truth");
    assert!(report.ops > 0);
}

#[test]
fn telemetry_counter_passes_the_counter_harness() {
    let telemetry = ccf_telemetry::Telemetry::enabled();
    let counter = telemetry.counter("ccf_analysis_checker_ops_total", "harness increments", &[]);
    check_counter_subject(&counter, &config(0xC0)).expect("atomic counter loses no updates");
}

#[test]
fn racy_counter_is_caught() {
    // The planted bug: a fake-locked load/store counter. Lost updates are a
    // scheduling phenomenon, so give the checker a few attempts; with yields
    // widening the windows it reliably fires within the first attempts even on
    // one CPU. If all attempts pass, the checker has no teeth — fail loudly.
    let mut caught = None;
    for attempt in 0..8 {
        let counter = RacyCounter::new();
        let mut cfg = config(0xBAD + attempt);
        cfg.ops_per_thread = 2000;
        cfg.rounds = 1;
        match check_counter_subject(&counter, &cfg) {
            Err(failure) => {
                caught = Some(failure);
                break;
            }
            Ok(_) => continue,
        }
    }
    match caught {
        Some(CheckFailure::Violation(Violation::LostUpdates { expected, observed })) => {
            assert!(observed < expected, "violation must report a deficit");
        }
        Some(other) => panic!("expected LostUpdates, got {other}"),
        None => panic!("schedule checker failed to catch the planted racy counter"),
    }
}

#[test]
fn check_failure_messages_are_actionable() {
    let v = CheckFailure::Violation(Violation::LostUpdates {
        expected: 100,
        observed: 97,
    });
    let msg = v.to_string();
    assert!(msg.contains("lost updates") && msg.contains("100") && msg.contains("97"));
}
