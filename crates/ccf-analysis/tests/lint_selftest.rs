//! Per-rule self-tests: every rule must fire on a seeded violation fixture and
//! stay silent on the fixed form. A rule without both halves is untrusted —
//! a scanner regression could silently stop it from ever firing.

use ccf_analysis::{lint_sources, Allowlist, SourceFile};

fn lint_one(path: &str, src: &str) -> Vec<(String, usize, String)> {
    let file = SourceFile::parse(path, src);
    lint_sources(std::slice::from_ref(&file), &Allowlist::empty())
        .findings
        .into_iter()
        .map(|f| (f.rule.to_string(), f.line, f.message))
        .collect()
}

fn rules_fired(path: &str, src: &str) -> Vec<String> {
    let mut rules: Vec<String> = lint_one(path, src).into_iter().map(|(r, _, _)| r).collect();
    rules.dedup();
    rules
}

// ---- CCF-L001: flooring-millis-cast ----------------------------------------

#[test]
fn l001_fires_on_flooring_millis_cast() {
    let findings = lint_one(
        "crates/x/src/lib.rs",
        "fn f(elapsed_secs: f64) -> u32 {\n    (elapsed_secs * 1000.0) as u32\n}\n",
    );
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].0, "CCF-L001");
    assert_eq!(findings[0].1, 2);
}

#[test]
fn l001_fires_on_load_factor_cast() {
    let fired = rules_fired(
        "crates/x/src/lib.rs",
        "fn g(lf: f64) -> u64 { (lf * load_factor_scale()) as u64 }\nfn load_factor_scale() -> f64 { 100.0 }\n",
    );
    assert!(fired.contains(&"CCF-L001".to_string()), "{fired:?}");
}

#[test]
fn l001_silent_on_rounded_form() {
    let findings = lint_one(
        "crates/x/src/lib.rs",
        "fn f(elapsed_secs: f64) -> u32 {\n    (elapsed_secs * 1000.0).round() as u32\n}\n",
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l001_silent_in_tests_and_cfg_test() {
    assert!(lint_one(
        "crates/x/tests/t.rs",
        "fn f(s: f64) -> u32 { (s * 1000.0) as u32 }\n"
    )
    .is_empty());
    assert!(lint_one(
        "crates/x/src/lib.rs",
        "#[cfg(test)]\nmod tests {\n    fn f(s: f64) -> u32 { (s * 1000.0) as u32 }\n}\n"
    )
    .is_empty());
}

// ---- CCF-L002: lib-panic-path ----------------------------------------------

#[test]
fn l002_fires_on_unwrap_expect_panic() {
    let src = "fn f() {\n    let v = std::env::var(\"X\").unwrap();\n    \
               let w = std::env::var(\"Y\").expect(\"set Y\");\n    \
               if v == w { panic!(\"equal\"); }\n}\n";
    let findings = lint_one("crates/x/src/lib.rs", src);
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert!(findings.iter().all(|f| f.0 == "CCF-L002"));
    assert_eq!(
        findings.iter().map(|f| f.1).collect::<Vec<_>>(),
        vec![2, 3, 4]
    );
}

#[test]
fn l002_silent_on_typed_error_form() {
    let src = "fn f() -> Result<String, std::env::VarError> {\n    std::env::var(\"X\")\n}\n";
    assert!(lint_one("crates/x/src/lib.rs", src).is_empty());
}

#[test]
fn l002_silent_in_tests_bins_and_cfg_test() {
    let panicky = "fn f() { None::<u8>.unwrap(); }\n";
    assert!(lint_one("crates/x/tests/t.rs", panicky).is_empty());
    assert!(lint_one("crates/x/benches/b.rs", panicky).is_empty());
    assert!(lint_one("crates/x/src/bin/tool.rs", panicky).is_empty());
    assert!(lint_one("crates/x/src/main.rs", panicky).is_empty());
    assert!(lint_one(
        "crates/x/src/lib.rs",
        "#[cfg(test)]\nmod tests {\n    fn f() { None::<u8>.unwrap(); }\n}\n"
    )
    .is_empty());
}

#[test]
fn l002_silent_on_comments_strings_and_facade() {
    // Doc comments, strings and the documented panicking-facade idiom.
    let src = "/// Calls `.unwrap()` — panic!(no it doesn't).\n\
               fn f(msg: &str) {\n    let _ = \"panic!(in a string).unwrap()\";\n}\n\
               fn facade(x: Result<u8, String>) -> u8 {\n    \
               x.unwrap_or_else(|e| panic!(\"{e}\"))\n}\n";
    let findings = lint_one("crates/x/src/lib.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l002_unwrap_or_variants_are_not_unwrap() {
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n\
               fn g(x: Option<u8>) -> u8 { x.unwrap_or_default() }\n";
    assert!(lint_one("crates/x/src/lib.rs", src).is_empty());
}

// ---- CCF-L003: unsafe-without-safety ---------------------------------------

#[test]
fn l003_fires_on_unjustified_unsafe_optin() {
    let src =
        "#[allow(unsafe_code)]\nfn fast() { unsafe { core::hint::unreachable_unchecked() } }\n";
    let findings = lint_one("crates/x/src/lib.rs", src);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].0, "CCF-L003");
    assert_eq!(findings[0].1, 1);
}

#[test]
fn l003_silent_with_safety_comment() {
    let src = "// SAFETY: the index is bounds-checked above; the intrinsic only\n\
               // prefetches, it never dereferences.\n\
               #[allow(unsafe_code)]\nfn fast() {}\n";
    assert!(lint_one("crates/x/src/lib.rs", src).is_empty());
}

#[test]
fn l003_safety_comment_may_sit_above_other_attributes() {
    let src =
        "// SAFETY: sound because of X.\n#[inline(always)]\n#[allow(unsafe_code)]\nfn fast() {}\n";
    assert!(lint_one("crates/x/src/lib.rs", src).is_empty());
}

#[test]
fn l003_unrelated_code_breaks_the_comment_block() {
    let src = "// SAFETY: this comment belongs to the item above.\nfn other() {}\n\n\
               #[allow(unsafe_code)]\nfn fast() {}\n";
    let findings = lint_one("crates/x/src/lib.rs", src);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].1, 4);
}

// ---- CCF-L004: salt-collision ----------------------------------------------

#[test]
fn l004_fires_on_duplicate_salt() {
    let src = "pub mod purpose {\n    pub const KEY_BUCKET: u64 = 0;\n    \
               pub const KEY_FINGERPRINT: u64 = 1;\n    pub const CHAIN: u64 = 1;\n}\n";
    let findings = lint_one("crates/x/src/lib.rs", src);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].0, "CCF-L004");
    assert_eq!(findings[0].1, 4);
    assert!(findings[0].2.contains("CHAIN") && findings[0].2.contains("KEY_FINGERPRINT"));
}

#[test]
fn l004_silent_on_distinct_salts_and_outside_purpose() {
    let distinct =
        "pub mod purpose {\n    pub const A: u64 = 0;\n    pub const B: u64 = 0x10;\n}\n";
    assert!(lint_one("crates/x/src/lib.rs", distinct).is_empty());
    // Equal consts outside a `mod purpose` are not salts.
    let unrelated = "pub const X: u64 = 7;\npub const Y: u64 = 7;\n";
    assert!(lint_one("crates/x/src/lib.rs", unrelated).is_empty());
}

#[test]
fn l004_parses_hex_and_underscored_literals() {
    let src = "pub mod purpose {\n    pub const A: u64 = 0x10;\n    pub const B: u64 = 1_6;\n}\n";
    let findings = lint_one("crates/x/src/lib.rs", src);
    assert_eq!(findings.len(), 1, "0x10 and 1_6 are both 16: {findings:?}");
}

// ---- CCF-L005: instrument-name ---------------------------------------------

#[test]
fn l005_fires_on_bad_names() {
    let src = "fn f(t: &Telemetry) {\n    \
               let _ = t.counter(\"ccf_inserts\", \"h\", &[]);\n    \
               let _ = t.gauge(\"queue_depth_total\", \"h\", &[]);\n    \
               let _ = t.histogram(\"ccf_latency\", \"h\", &[], &[]);\n    \
               let _ = t.counter(\"CCF_OPS_TOTAL\", \"h\", &[]);\n}\n";
    let findings = lint_one("crates/x/src/lib.rs", src);
    assert_eq!(findings.len(), 4, "{findings:?}");
    assert!(findings.iter().all(|f| f.0 == "CCF-L005"));
    assert!(findings[0].2.contains("_total"), "{}", findings[0].2);
    assert!(findings[1].2.contains("layer prefix"), "{}", findings[1].2);
    assert!(findings[2].2.contains("unit suffix"), "{}", findings[2].2);
    assert!(findings[3].2.contains("snake_case"), "{}", findings[3].2);
}

#[test]
fn l005_silent_on_conforming_names() {
    let src = "fn f(t: &Telemetry) {\n    \
               let _ = t.counter(\"ccf_inserts_total\", \"h\", &[]);\n    \
               let _ = t.gauge(\"loadgen_inflight_rows\", \"h\", &[]);\n    \
               let _ = t.histogram(\"cuckoo_kick_depth\", \"h\", &[], &[]);\n    \
               let _ = t.histogram(\"loopback_rtt_ns\", \"h\", &[], &[]);\n}\n";
    assert!(lint_one("crates/x/src/lib.rs", src).is_empty());
}

#[test]
fn l005_checks_rustfmt_multiline_registrations() {
    let bad = "fn f(t: &Telemetry) {\n    let _ = t.histogram(\n        \"ccf_latency\",\n        \"h\",\n    );\n}\n";
    let fired = rules_fired("crates/x/src/lib.rs", bad);
    assert_eq!(fired, vec!["CCF-L005".to_string()], "{fired:?}");
    let good = "fn f(t: &Telemetry) {\n    let _ = t.histogram(\n        \"ccf_latency_ns\",\n        \"h\",\n    );\n}\n";
    assert!(lint_one("crates/x/src/lib.rs", good).is_empty());
}

#[test]
fn l005_skips_variables_and_commented_calls() {
    let src = "fn f(t: &Telemetry, name: &str) {\n    \
               let _ = t.counter(name, \"h\", &[]);\n    \
               // let _ = t.counter(\"bad name\", \"h\", &[]);\n}\n";
    assert!(lint_one("crates/x/src/lib.rs", src).is_empty());
}

// ---- Allowlist integration --------------------------------------------------

#[test]
fn allowlist_suppresses_and_counts() {
    let file = SourceFile::parse(
        "crates/x/src/lib.rs",
        "fn f() { None::<u8>.expect(\"invariant: always present\"); }\n",
    );
    let allow = Allowlist::parse(
        "CCF-L002 crates/x/src/ expect(\"invariant -- the invariant is documented on f()\n",
    )
    .expect("valid allowlist");
    let run = lint_sources(std::slice::from_ref(&file), &allow);
    assert!(run.findings.is_empty(), "{:?}", run.findings);
    assert_eq!(run.suppressed, 1);
}

#[test]
fn every_rule_has_fixture_coverage() {
    // The catalog and this file must grow together: each rule ID appears in at
    // least one firing fixture above. Compile-time completeness via exhaustive
    // match is impossible for data, so pin the count.
    assert_eq!(ccf_analysis::RULES.len(), 5);
    for r in ccf_analysis::RULES {
        assert!(r.id.starts_with("CCF-L"), "{}", r.id);
        assert!(!r.summary.is_empty() && !r.hint.is_empty());
    }
}
