//! The workspace must lint clean through the engine (the same code path the
//! `ccf-lint` binary runs), and the CCF-L004 source parser must agree with the
//! compiled ground truth `ccf_hash::salted::purpose::ALL`.

use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/ccf-analysis → workspace root is two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crate sits two levels under the workspace root")
}

#[test]
fn workspace_lints_clean() {
    let run = ccf_analysis::lint_workspace(workspace_root()).expect("lint run completes");
    assert!(
        run.files_scanned > 100,
        "only {} files scanned — discovery broke",
        run.files_scanned
    );
    let rendered: Vec<String> = run.findings.iter().map(|f| f.render()).collect();
    assert!(
        run.findings.is_empty(),
        "workspace has lint findings:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn allowlist_parses_and_every_entry_is_justified() {
    let path = workspace_root().join(ccf_analysis::DEFAULT_ALLOWLIST);
    let allowlist = ccf_analysis::load_allowlist(&path).expect("allowlist parses");
    assert!(
        !allowlist.entries.is_empty(),
        "the workspace allowlist exists and is non-trivial"
    );
    for e in &allowlist.entries {
        assert!(
            e.justification.split_whitespace().count() >= 3,
            "allowlist line {} has a throwaway justification: {:?}",
            e.source_line,
            e.justification
        );
    }
}

/// The CCF-L004 parser reads salts out of the source text; `purpose::ALL` is the
/// compiled truth. If the parser rots (a format change it cannot see), this
/// cross-check fails rather than the rule silently passing on everything.
#[test]
fn salt_parser_agrees_with_compiled_ground_truth() {
    let path = workspace_root().join("crates/ccf-hash/src/salted.rs");
    let text = std::fs::read_to_string(&path).expect("salted.rs is readable");
    let file = ccf_analysis::SourceFile::parse("crates/ccf-hash/src/salted.rs", &text);
    let parsed = ccf_analysis::parse_purpose_salts(&file);

    let mut parsed_pairs: Vec<(String, u64)> =
        parsed.iter().map(|c| (c.name.clone(), c.value)).collect();
    parsed_pairs.sort();
    let mut truth: Vec<(String, u64)> = ccf_hash::salted::purpose::ALL
        .iter()
        .map(|(n, v)| (n.to_string(), *v))
        .collect();
    truth.sort();
    assert_eq!(
        parsed_pairs, truth,
        "CCF-L004's source parse diverged from ccf_hash::salted::purpose::ALL"
    );

    // And the truth itself is pairwise distinct (the compiled-side guarantee the
    // lint mirrors textually).
    let mut values: Vec<u64> = truth.iter().map(|(_, v)| *v).collect();
    values.sort_unstable();
    values.dedup();
    assert_eq!(values.len(), truth.len(), "purpose salts collide");
}
