//! End-to-end smoke tests for the `ccf-lint` binary: stable output format,
//! stable exit codes, rule listing.

use std::path::PathBuf;
use std::process::Command;

fn lint_bin() -> &'static str {
    env!("CARGO_BIN_EXE_ccf-lint")
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

/// A scratch workspace under the target temp dir, cleaned up on drop.
struct ScratchWorkspace {
    root: PathBuf,
}

impl ScratchWorkspace {
    fn new(tag: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("ccf-lint-smoke-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("crates/demo/src")).expect("mkdir scratch");
        std::fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
        ScratchWorkspace { root }
    }

    fn write(&self, rel: &str, text: &str) {
        let path = self.root.join(rel);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("mkdir");
        }
        std::fs::write(path, text).expect("write scratch file");
    }
}

impl Drop for ScratchWorkspace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn real_workspace_is_clean_with_exit_zero() {
    let out = Command::new(lint_bin())
        .args(["--root"])
        .arg(workspace_root())
        .output()
        .expect("run ccf-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "ccf-lint found problems:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.trim().is_empty(),
        "clean run prints no findings: {stdout}"
    );
}

#[test]
fn planted_violation_exits_one_with_stable_format() {
    let ws = ScratchWorkspace::new("violation");
    ws.write(
        "crates/demo/src/lib.rs",
        "pub fn f() {\n    let v: Option<u8> = None;\n    v.unwrap();\n}\n",
    );
    let out = Command::new(lint_bin())
        .args(["--root"])
        .arg(&ws.root)
        .output()
        .expect("run ccf-lint");
    assert_eq!(out.status.code(), Some(1), "findings exit with code 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 1, "one finding, one line: {stdout}");
    // Stable format: `RULE-ID file:line message`.
    assert!(
        lines[0].starts_with("CCF-L002 crates/demo/src/lib.rs:3 "),
        "unexpected finding line: {}",
        lines[0]
    );
}

#[test]
fn allowlist_suppresses_planted_violation() {
    let ws = ScratchWorkspace::new("allowlisted");
    ws.write(
        "crates/demo/src/lib.rs",
        "pub fn f() {\n    let v: Option<u8> = None;\n    v.unwrap();\n}\n",
    );
    ws.write(
        "ccf-lint.allow",
        "CCF-L002 crates/demo/src/ v.unwrap() -- smoke-test fixture exercising suppression\n",
    );
    let out = Command::new(lint_bin())
        .args(["--root"])
        .arg(&ws.root)
        .output()
        .expect("run ccf-lint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("1 suppressed"),
        "summary reports suppression: {stderr}"
    );
}

#[test]
fn malformed_allowlist_exits_two() {
    let ws = ScratchWorkspace::new("badallow");
    ws.write("crates/demo/src/lib.rs", "pub fn f() {}\n");
    ws.write(
        "ccf-lint.allow",
        "CCF-L002 crates/demo/src/ * no separator\n",
    );
    let out = Command::new(lint_bin())
        .args(["--root"])
        .arg(&ws.root)
        .output()
        .expect("run ccf-lint");
    assert_eq!(out.status.code(), Some(2), "parse errors exit with code 2");
    assert!(String::from_utf8_lossy(&out.stderr).contains("justification"));
}

#[test]
fn unknown_flag_exits_two() {
    let out = Command::new(lint_bin())
        .arg("--frobnicate")
        .output()
        .expect("run ccf-lint");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn rules_listing_names_all_five() {
    let out = Command::new(lint_bin())
        .arg("--rules")
        .output()
        .expect("run ccf-lint");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in ["CCF-L001", "CCF-L002", "CCF-L003", "CCF-L004", "CCF-L005"] {
        assert!(stdout.contains(id), "--rules omits {id}: {stdout}");
    }
    assert!(stdout.contains("fix:"), "--rules includes fix-it hints");
}
