//! A lightweight lexical model of one Rust source file.
//!
//! The lint rules need to reason about *code*, not about comments or string
//! literals: `panic!` inside a doc comment or a pattern string must never fire a
//! rule, and a metric name can only be read out of a *string literal in code
//! position*. This module classifies every byte of a file as code, comment or
//! string, splits the file into lines carrying both the raw text and a
//! code-only projection (non-code bytes blanked to spaces), and marks the line
//! ranges covered by `#[cfg(test)]` items so rules can exempt test code.
//!
//! This is deliberately not a full Rust lexer (no `syn` — the workspace builds
//! offline with zero new dependencies). It handles the token classes that matter
//! for masking: line and nested block comments, plain/byte strings with escapes,
//! raw strings `r#"…"#` up to any hash depth, and the char-literal vs lifetime
//! ambiguity. Constructs it cannot see (macro-generated source) are out of scope
//! by design; the rules are repo invariants over the literal source text.

/// Classification of one byte of source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByteClass {
    /// Ordinary code, including whitespace between tokens.
    Code,
    /// Inside `//…` or `/* … */` (the delimiters count as comment).
    Comment,
    /// Inside a string, byte-string, raw-string or char literal (delimiters
    /// included).
    Str,
}

/// One line of the file, in raw and code-only projections.
#[derive(Debug, Clone)]
pub struct Line {
    /// The raw text, without the trailing newline.
    pub raw: String,
    /// Same length as `raw`, with every non-[`ByteClass::Code`] byte replaced by a
    /// space. Rules that match tokens do so against this projection.
    pub code: String,
    /// Comment text of the line (code and string bytes blanked) — used by rules
    /// that look *for* comments, e.g. the `SAFETY:` requirement.
    pub comment: String,
    /// Whether the line is inside a `#[cfg(test)]` item (the attribute line
    /// itself counts).
    pub in_test_region: bool,
}

/// Where a file sits in the workspace, as far as rule applicability goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileKind {
    /// Under a `tests/`, `benches/` or `examples/` directory: test harness code.
    pub is_test_context: bool,
    /// Under `src/bin/` or a `src/main.rs`: binary entry-point code.
    pub is_bin: bool,
}

/// A scanned source file ready for linting.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes (stable across platforms —
    /// it is part of the machine-readable finding format).
    pub path: String,
    pub kind: FileKind,
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Scan `text` as the contents of `path` (workspace-relative).
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let classes = classify(text);
        let mut lines = split_lines(text, &classes);
        mark_test_regions(&mut lines);
        SourceFile {
            path: path.replace('\\', "/"),
            kind: file_kind(path),
            lines,
        }
    }

    /// 1-indexed iteration over lines, the shape every rule wants.
    pub fn numbered(&self) -> impl Iterator<Item = (usize, &Line)> {
        self.lines.iter().enumerate().map(|(i, l)| (i + 1, l))
    }
}

fn file_kind(path: &str) -> FileKind {
    let p = path.replace('\\', "/");
    let is_test_context = p.contains("/tests/")
        || p.starts_with("tests/")
        || p.contains("/benches/")
        || p.contains("/examples/")
        || p.starts_with("examples/");
    let is_bin = p.contains("/bin/") || p.ends_with("src/main.rs");
    FileKind {
        is_test_context,
        is_bin,
    }
}

/// Lexer state for [`classify`].
enum State {
    Code,
    LineComment,
    BlockComment { depth: u32 },
    Str { raw_hashes: Option<u32> },
    CharLit,
}

/// Classify every byte of `text`.
fn classify(text: &str) -> Vec<ByteClass> {
    let b = text.as_bytes();
    let mut out = vec![ByteClass::Code; b.len()];
    let mut state = State::Code;
    let mut i = 0;
    while i < b.len() {
        match state {
            State::Code => {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
                    state = State::LineComment;
                    out[i] = ByteClass::Comment;
                } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    state = State::BlockComment { depth: 1 };
                    out[i] = ByteClass::Comment;
                    out[i + 1] = ByteClass::Comment;
                    i += 2;
                    continue;
                } else if b[i] == b'"' {
                    state = State::Str { raw_hashes: None };
                    out[i] = ByteClass::Str;
                } else if let Some((prefix_len, hashes)) = raw_string_prefix(b, i) {
                    for c in out.iter_mut().skip(i).take(prefix_len) {
                        *c = ByteClass::Str;
                    }
                    state = State::Str {
                        raw_hashes: Some(hashes),
                    };
                    i += prefix_len;
                    continue;
                } else if b[i] == b'\'' && is_char_literal(b, i) {
                    state = State::CharLit;
                    out[i] = ByteClass::Str;
                }
            }
            State::LineComment => {
                if b[i] == b'\n' {
                    state = State::Code;
                } else {
                    out[i] = ByteClass::Comment;
                }
            }
            State::BlockComment { depth } => {
                out[i] = ByteClass::Comment;
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    out[i + 1] = ByteClass::Comment;
                    state = State::BlockComment { depth: depth + 1 };
                    i += 2;
                    continue;
                }
                if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    out[i + 1] = ByteClass::Comment;
                    state = if depth > 1 {
                        State::BlockComment { depth: depth - 1 }
                    } else {
                        State::Code
                    };
                    i += 2;
                    continue;
                }
            }
            State::Str { raw_hashes: None } => {
                out[i] = ByteClass::Str;
                if b[i] == b'\\' && i + 1 < b.len() {
                    out[i + 1] = ByteClass::Str;
                    i += 2;
                    continue;
                }
                if b[i] == b'"' {
                    state = State::Code;
                }
            }
            State::Str {
                raw_hashes: Some(h),
            } => {
                out[i] = ByteClass::Str;
                if b[i] == b'"' && has_hashes(b, i + 1, h) {
                    for c in out.iter_mut().skip(i).take(1 + h as usize) {
                        *c = ByteClass::Str;
                    }
                    i += 1 + h as usize;
                    state = State::Code;
                    continue;
                }
            }
            State::CharLit => {
                out[i] = ByteClass::Str;
                if b[i] == b'\\' && i + 1 < b.len() {
                    out[i + 1] = ByteClass::Str;
                    i += 2;
                    continue;
                }
                if b[i] == b'\'' {
                    state = State::Code;
                }
            }
        }
        i += 1;
    }
    out
}

/// Does a raw/byte-string prefix (`r"`, `r#"`, `br##"`, `b"`) start at `i`?
/// Returns the prefix length (through the opening quote) and the hash count.
fn raw_string_prefix(b: &[u8], i: usize) -> Option<(usize, u32)> {
    // Must not be the tail of an identifier (`attr"` is not a raw string).
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return None;
    }
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    let is_raw = j < b.len() && b[j] == b'r';
    if is_raw {
        j += 1;
    } else if j == i {
        return None; // neither `b` nor `r` prefix
    }
    let mut hashes = 0u32;
    while j < b.len() && b[j] == b'#' {
        if !is_raw {
            return None; // `b#` is not a string prefix
        }
        hashes += 1;
        j += 1;
    }
    if j < b.len() && b[j] == b'"' {
        Some((j - i + 1, hashes))
    } else {
        None
    }
}

fn has_hashes(b: &[u8], start: usize, h: u32) -> bool {
    let h = h as usize;
    start + h <= b.len() && b[start..start + h].iter().all(|&c| c == b'#')
}

/// Distinguish `'a'` / `'\n'` (char literal) from `'a` (lifetime) at a `'`.
fn is_char_literal(b: &[u8], i: usize) -> bool {
    match b.get(i + 1) {
        Some(b'\\') => true,
        Some(&c) => {
            if c == b'\'' {
                return false; // `''` — not valid either way; treat as code
            }
            // `'x'` is a char literal; `'x` followed by anything else is a
            // lifetime (or a label). Multi-byte chars ('λ') also end in a quote
            // within a few bytes; scan a short window.
            b.iter()
                .skip(i + 1)
                .take(5)
                .take_while(|&&c2| c2 != b'\n')
                .any(|&c2| c2 == b'\'')
                && !(c.is_ascii_alphabetic() || c == b'_')
                || (b.get(i + 2) == Some(&b'\''))
        }
        None => false,
    }
}

fn split_lines(text: &str, classes: &[ByteClass]) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut start = 0usize;
    let bytes = text.as_bytes();
    for i in 0..=bytes.len() {
        if i == bytes.len() || bytes[i] == b'\n' {
            if i == bytes.len() && start == i && !lines.is_empty() {
                break; // trailing newline: no phantom empty last line
            }
            let raw_bytes = &bytes[start..i];
            let raw = String::from_utf8_lossy(raw_bytes).into_owned();
            let mut code = String::with_capacity(raw.len());
            let mut comment = String::with_capacity(raw.len());
            for (k, &ch) in raw_bytes.iter().enumerate() {
                let class = classes[start + k];
                let printable = if ch.is_ascii() && !ch.is_ascii_control() {
                    ch as char
                } else {
                    ' '
                };
                code.push(if class == ByteClass::Code {
                    printable
                } else {
                    ' '
                });
                comment.push(if class == ByteClass::Comment {
                    printable
                } else {
                    ' '
                });
            }
            lines.push(Line {
                raw,
                code,
                comment,
                in_test_region: false,
            });
            start = i + 1;
            if i == bytes.len() {
                break;
            }
        }
    }
    lines
}

/// Mark the line span of every `#[cfg(test)]`-gated item.
///
/// Heuristic but robust for this workspace's style: from a line whose *code*
/// contains `#[cfg(test)]` (or `#[cfg(all(test`…), scan forward for the first
/// `{` at code level and mark through its matching `}`; if a `;` appears first
/// the attribute gates a single-line item. Nested braces inside the region are
/// balanced on the code projection, so strings and comments cannot derail it.
fn mark_test_regions(lines: &mut [Line]) {
    let mut i = 0;
    while i < lines.len() {
        let code = &lines[i].code;
        if !(code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test")) {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut end = lines.len() - 1;
        'scan: for (j, line) in lines.iter().enumerate().skip(i) {
            for ch in line.code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            end = j;
                            break 'scan;
                        }
                    }
                    ';' if !opened => {
                        end = j;
                        break 'scan;
                    }
                    _ => {}
                }
            }
        }
        for line in lines.iter_mut().take(end + 1).skip(i) {
            line.in_test_region = true;
        }
        i = end + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_masked() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "let a = \"panic!()\"; // panic!()\nlet b = 1; /* .unwrap() */ let c = 2;\n",
        );
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(!f.lines[1].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("let a ="));
        assert!(f.lines[1].code.contains("let c = 2;"));
        assert!(f.lines[0].comment.contains("panic!()"));
    }

    #[test]
    fn raw_strings_and_char_literals() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "let s = r#\"has \"quotes\" and .unwrap()\"#;\nlet c = '\\''; let lt: &'static str = \"x\";\n",
        );
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[1].code.contains("static"));
    }

    #[test]
    fn nested_block_comments() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "/* outer /* inner .expect( */ still comment */ let x = 1;\n",
        );
        assert!(!f.lines[0].code.contains("expect"));
        assert!(f.lines[0].code.contains("let x = 1;"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test_region).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn file_kind_classification() {
        assert!(
            SourceFile::parse("crates/x/tests/t.rs", "")
                .kind
                .is_test_context
        );
        assert!(
            SourceFile::parse("crates/x/benches/b.rs", "")
                .kind
                .is_test_context
        );
        assert!(SourceFile::parse("examples/e.rs", "").kind.is_test_context);
        assert!(
            SourceFile::parse("crates/x/src/bin/tool.rs", "")
                .kind
                .is_bin
        );
        let lib = SourceFile::parse("crates/x/src/lib.rs", "");
        assert!(!lib.kind.is_test_context && !lib.kind.is_bin);
    }
}
