//! A deterministic, seeded interleaving-stress harness (lincheck-style) for the
//! workspace's concurrent structures.
//!
//! The checker generates randomized concurrent op schedules from a seed, drives
//! small [`ShardedCcf`] instances and raw [`Telemetry`] registries through them
//! across scoped threads, and verifies the observable behavior against the
//! sequential specification. Three complementary phases for the filter service:
//!
//! 1. **Shard-partitioned churn, bit-identity.** Each thread owns the keys of
//!    one shard, so every shard serializes exactly one thread's program order.
//!    The final filter state must be *bit-identical* (via snapshot bytes) to a
//!    sequential replay of the same per-thread op sequences, and every op must
//!    return the same outcome — inserts, deletes, growth, kicks and all.
//! 2. **Cross-shard insert-only linearizability.** Writer threads insert
//!    disjoint key sets anywhere in the keyspace while prober threads issue
//!    point lookups, every op stamped with start/end ticks from a global atomic
//!    clock. A probe that *begins after an insert of `k` completed* must see
//!    `k` (filters never false-negative); the final state must contain every
//!    inserted key. (Probes racing an in-flight insert may see either state —
//!    that is the linearizable envelope, not a bug.)
//! 3. **Frozen concurrent batch reads.** With writers quiesced, concurrent
//!    batched probes from every thread must be bit-identical to the sequential
//!    batch answer — the `ShardedCcf` determinism contract under read
//!    concurrency.
//!
//! For telemetry the sequential specification is counter ground truth: after
//! the threads join, every counter/gauge/histogram must equal the tally of the
//! schedule that was executed, and snapshots taken mid-flight must observe
//! counters monotonically.
//!
//! Schedules are deterministic in their *content* (seeded [`StdRng`]); the OS
//! supplies the interleavings, so the harness runs a few bounded rounds rather
//! than trusting any single execution. Thread counts are gated on
//! [`std::thread::available_parallelism`] and iteration counts are bounded so
//! the whole suite stays cheap on the 1-CPU CI box.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

use ccf_core::{CcfParams, Predicate, VariantKind};
use ccf_shard::ShardedCcf;
use ccf_telemetry::{buckets, Telemetry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sizing knobs for one checker run.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Worker threads (and, in phase 1, shards). At least 2.
    pub threads: usize,
    /// Ops each thread executes per round.
    pub ops_per_thread: usize,
    /// Keys in each thread's private pool.
    pub keys_per_thread: usize,
    /// Master seed; every schedule derives from it.
    pub seed: u64,
    /// Rounds per phase (each re-seeds with `seed + round`).
    pub rounds: usize,
}

impl CheckConfig {
    /// A bounded configuration scaled to the host: 2–4 threads, fewer ops on
    /// small boxes, so CI (1 CPU) finishes in seconds while a developer machine
    /// gets more interleaving coverage.
    pub fn for_host(seed: u64) -> Self {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        CheckConfig {
            threads: hw.clamp(2, 4),
            ops_per_thread: if hw >= 4 { 384 } else { 192 },
            keys_per_thread: 48,
            seed,
            rounds: if hw >= 4 { 3 } else { 2 },
        }
    }
}

/// A linearizability/ground-truth violation the checker detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Concurrent execution left different bits than the sequential replay.
    StateDivergence { phase: &'static str, detail: String },
    /// An op returned a different outcome concurrently than sequentially.
    OutcomeDivergence {
        thread: usize,
        op_index: usize,
        detail: String,
    },
    /// A key whose insert completed was absent from the final state.
    FalseNegative { key: u64 },
    /// A probe that began after an insert of the key completed returned false.
    StaleRead { key: u64, detail: String },
    /// An instrument's final value diverged from the schedule's ground truth.
    CounterDrift {
        instrument: String,
        expected: u64,
        observed: u64,
    },
    /// A histogram's count/sum/buckets diverged from ground truth.
    HistogramDrift { instrument: String, detail: String },
    /// A counter moved backwards between two snapshots taken in order.
    NonMonotonicSnapshot { instrument: String, detail: String },
    /// A plain counting subject lost updates under contention.
    LostUpdates { expected: u64, observed: u64 },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::StateDivergence { phase, detail } => {
                write!(f, "[{phase}] concurrent state diverged from sequential replay: {detail}")
            }
            Violation::OutcomeDivergence {
                thread,
                op_index,
                detail,
            } => write!(
                f,
                "op {op_index} of thread {thread} returned a different outcome concurrently: {detail}"
            ),
            Violation::FalseNegative { key } => {
                write!(f, "key {key} was inserted (completed) but is absent from the final state")
            }
            Violation::StaleRead { key, detail } => {
                write!(f, "probe of key {key} missed a completed insert: {detail}")
            }
            Violation::CounterDrift {
                instrument,
                expected,
                observed,
            } => write!(
                f,
                "{instrument}: expected {expected} from the executed schedule, observed {observed}"
            ),
            Violation::HistogramDrift { instrument, detail } => {
                write!(f, "{instrument}: {detail}")
            }
            Violation::NonMonotonicSnapshot { instrument, detail } => {
                write!(f, "{instrument} moved backwards across ordered snapshots: {detail}")
            }
            Violation::LostUpdates { expected, observed } => write!(
                f,
                "lost updates: {expected} increments performed, {observed} recorded"
            ),
        }
    }
}

/// Why a check run did not produce a clean report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckFailure {
    /// The harness could not set the experiment up (bad params, key-pool
    /// exhaustion) — says nothing about the subject.
    Setup(String),
    /// The subject violated its specification.
    Violation(Violation),
}

impl std::fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckFailure::Setup(s) => write!(f, "schedule-checker setup failed: {s}"),
            CheckFailure::Violation(v) => write!(f, "schedule-checker violation: {v}"),
        }
    }
}

impl std::error::Error for CheckFailure {}

/// Statistics from a clean run.
#[derive(Debug, Clone, Copy, Default)]
pub struct Report {
    /// Mutating + probing ops executed across all threads and rounds.
    pub ops: u64,
    /// Interval-stamped probe observations that were checked.
    pub probes_checked: u64,
    /// Rounds completed.
    pub rounds: u64,
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ops, {} stamped probes, {} rounds — no violations",
            self.ops, self.probes_checked, self.rounds
        )
    }
}

/// One scheduled filter operation.
#[derive(Debug, Clone, Copy)]
enum FilterOp {
    Insert(u64),
    Delete(u64),
    Contains(u64),
    Query(u64),
}

fn attrs_of(key: u64) -> [u64; 1] {
    [key % 5]
}

fn filter_params(seed: u64) -> CcfParams {
    CcfParams {
        num_buckets: 1 << 7,
        num_attrs: 1,
        seed,
        ..CcfParams::default()
    }
}

fn new_service(seed: u64, shards: usize) -> Result<ShardedCcf, CheckFailure> {
    ShardedCcf::try_new(VariantKind::Plain, filter_params(seed), shards)
        .map(|s| s.with_threads(2))
        .map_err(|e| CheckFailure::Setup(format!("ShardedCcf::try_new: {e}")))
}

/// Deterministic key pools, one per shard: thread `t` owns keys routed to
/// shard `t`, so phase 1's per-shard op order is exactly one thread's program
/// order.
fn shard_key_pools(
    service: &ShardedCcf,
    threads: usize,
    keys_per_thread: usize,
    seed: u64,
) -> Result<Vec<Vec<u64>>, CheckFailure> {
    let mut pools: Vec<Vec<u64>> = vec![Vec::new(); threads];
    let mut candidate = seed | 1;
    let budget = keys_per_thread * threads * 4096;
    for _ in 0..budget {
        candidate = candidate
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(23)
            .wrapping_add(0xD1B5_4A32_D192_ED03);
        let shard = service.shard_of(candidate);
        if shard < threads && pools[shard].len() < keys_per_thread {
            pools[shard].push(candidate);
            if pools.iter().all(|p| p.len() == keys_per_thread) {
                return Ok(pools);
            }
        }
    }
    Err(CheckFailure::Setup(format!(
        "could not fill {threads}×{keys_per_thread} shard-local key pools within {budget} draws"
    )))
}

fn schedule_ops(pool: &[u64], ops: usize, rng: &mut StdRng) -> Vec<FilterOp> {
    (0..ops)
        .map(|_| {
            let key = pool[rng.gen_range(0..pool.len())];
            match rng.gen_range(0..100u32) {
                0..=54 => FilterOp::Insert(key),
                55..=74 => FilterOp::Delete(key),
                75..=89 => FilterOp::Contains(key),
                _ => FilterOp::Query(key),
            }
        })
        .collect()
}

/// Execute one op, folding its observable outcome into a small code so
/// concurrent and sequential runs can be compared exactly.
fn exec_op(service: &ShardedCcf, pred: &Predicate, op: FilterOp) -> u8 {
    match op {
        FilterOp::Insert(k) => match service.insert(k, &attrs_of(k)) {
            Ok(_) => 0,
            Err(_) => 1,
        },
        FilterOp::Delete(k) => match service.delete_row(k, &attrs_of(k)) {
            Ok(true) => 0,
            Ok(false) => 1,
            Err(_) => 2,
        },
        FilterOp::Contains(k) => u8::from(service.contains_key(k)),
        FilterOp::Query(k) => u8::from(service.query(k, pred)),
    }
}

/// Phase 1: shard-partitioned concurrent churn must be bit-identical to the
/// sequential replay.
fn check_shard_partitioned_round(cfg: &CheckConfig, round: u64) -> Result<u64, CheckFailure> {
    let seed = cfg.seed.wrapping_add(round);
    let threads = cfg.threads;
    let service = new_service(seed, threads)?;
    let pools = shard_key_pools(&service, threads, cfg.keys_per_thread, seed)?;
    let plans: Vec<Vec<FilterOp>> = pools
        .iter()
        .enumerate()
        .map(|(t, pool)| {
            let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0xA5A5_5A5A));
            schedule_ops(pool, cfg.ops_per_thread, &mut rng)
        })
        .collect();

    // Concurrent execution: thread t's ops all land on shard t.
    let mut outcomes: Vec<Vec<u8>> = vec![Vec::new(); threads];
    let barrier = Barrier::new(threads);
    std::thread::scope(|s| {
        for (slot, plan) in outcomes.iter_mut().zip(plans.iter()) {
            let service = &service;
            let barrier = &barrier;
            s.spawn(move || {
                let pred = service.predicate();
                barrier.wait();
                for &op in plan {
                    slot.push(exec_op(service, &pred, op));
                }
            });
        }
    });

    // Sequential replay: same per-thread sequences, thread by thread. Each
    // shard sees the same op order either way, so outcomes and final bits must
    // match exactly.
    let reference = new_service(seed, threads)?;
    let pred = reference.predicate();
    for (t, plan) in plans.iter().enumerate() {
        for (i, &op) in plan.iter().enumerate() {
            let code = exec_op(&reference, &pred, op);
            if outcomes[t][i] != code {
                return Err(CheckFailure::Violation(Violation::OutcomeDivergence {
                    thread: t,
                    op_index: i,
                    detail: format!(
                        "concurrent={} sequential={} for {:?}",
                        outcomes[t][i], code, plan[i]
                    ),
                }));
            }
        }
    }
    if service.to_snapshot_bytes() != reference.to_snapshot_bytes() {
        return Err(CheckFailure::Violation(Violation::StateDivergence {
            phase: "shard-partitioned",
            detail: "final snapshot bytes differ".to_string(),
        }));
    }
    Ok((threads * cfg.ops_per_thread) as u64)
}

#[derive(Debug, Clone, Copy)]
struct WriteEvent {
    key: u64,
    end: u64,
    ok: bool,
}

#[derive(Debug, Clone, Copy)]
struct ProbeEvent {
    key: u64,
    result: bool,
    start: u64,
}

/// Phase 2: cross-shard insert-only writers + stamped probers.
fn check_cross_shard_round(cfg: &CheckConfig, round: u64) -> Result<(u64, u64), CheckFailure> {
    let seed = cfg.seed.wrapping_add(0x5EED).wrapping_add(round);
    let writers = (cfg.threads / 2).max(1);
    let probers = (cfg.threads - writers).max(1);
    let service = new_service(seed, 2)?;

    // Disjoint writer key sets over the full keyspace (any shard).
    let key_sets: Vec<Vec<u64>> = (0..writers as u64)
        .map(|w| {
            (0..cfg.keys_per_thread as u64)
                .map(|i| {
                    (w * cfg.keys_per_thread as u64 + i + 1)
                        .wrapping_mul(0x2545_F491_4F6C_DD1D)
                        .rotate_left(17)
                        ^ seed
                })
                .collect()
        })
        .collect();
    let all_keys: Vec<u64> = key_sets.iter().flatten().copied().collect();

    let clock = AtomicU64::new(0);
    let barrier = Barrier::new(writers + probers);
    let mut write_logs: Vec<Vec<WriteEvent>> = vec![Vec::new(); writers];
    let mut probe_logs: Vec<Vec<ProbeEvent>> = vec![Vec::new(); probers];
    std::thread::scope(|s| {
        for (slot, keys) in write_logs.iter_mut().zip(key_sets.iter()) {
            let service = &service;
            let clock = &clock;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for &key in keys {
                    clock.fetch_add(1, Ordering::SeqCst);
                    let ok = service.insert(key, &attrs_of(key)).is_ok();
                    let end = clock.fetch_add(1, Ordering::SeqCst);
                    slot.push(WriteEvent { key, end, ok });
                }
            });
        }
        for (p, slot) in probe_logs.iter_mut().enumerate() {
            let service = &service;
            let clock = &clock;
            let barrier = &barrier;
            let all_keys = &all_keys;
            let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF ^ (p as u64) << 8);
            let probes = cfg.ops_per_thread;
            s.spawn(move || {
                barrier.wait();
                for _ in 0..probes {
                    let key = all_keys[rng.gen_range(0..all_keys.len())];
                    let start = clock.fetch_add(1, Ordering::SeqCst);
                    let result = service.contains_key(key);
                    let _end = clock.fetch_add(1, Ordering::SeqCst);
                    slot.push(ProbeEvent { key, result, start });
                    if start % 64 == 0 {
                        std::thread::yield_now();
                    }
                }
            });
        }
    });

    // Spec checks. Every insert must have succeeded (the filter is sized with
    // ample headroom), so "completed insert" == the event's end stamp.
    let mut insert_end_of = std::collections::HashMap::new();
    for ev in write_logs.iter().flatten() {
        if !ev.ok {
            return Err(CheckFailure::Setup(format!(
                "insert of key {} failed — filter under-sized for the schedule",
                ev.key
            )));
        }
        insert_end_of.insert(ev.key, ev.end);
    }
    let mut probes_checked = 0u64;
    for ev in probe_logs.iter().flatten() {
        probes_checked += 1;
        if ev.result {
            continue; // positive answers are always linearizable here
        }
        if let Some(&end) = insert_end_of.get(&ev.key) {
            if end < ev.start {
                return Err(CheckFailure::Violation(Violation::StaleRead {
                    key: ev.key,
                    detail: format!(
                        "insert completed at tick {end}, probe started at tick {}",
                        ev.start
                    ),
                }));
            }
        }
    }
    for &key in &all_keys {
        if !service.contains_key(key) {
            return Err(CheckFailure::Violation(Violation::FalseNegative { key }));
        }
    }

    // Phase 3 on the same populated filter: frozen concurrent batch reads must
    // be bit-identical to the sequential batch answer.
    let pred = service.predicate();
    let expected_contains = service.contains_key_batch(&all_keys);
    let expected_query = service.query_batch(&all_keys, &pred);
    let readers = cfg.threads;
    let mut mismatch: Vec<Option<&'static str>> = vec![None; readers];
    std::thread::scope(|s| {
        for slot in mismatch.iter_mut() {
            let service = &service;
            let all_keys = &all_keys;
            let expected_contains = &expected_contains;
            let expected_query = &expected_query;
            let pred = service.predicate();
            s.spawn(move || {
                if &service.contains_key_batch(all_keys) != expected_contains {
                    *slot = Some("contains_key_batch");
                } else if &service.query_batch(all_keys, &pred) != expected_query {
                    *slot = Some("query_batch");
                }
            });
        }
    });
    if let Some(which) = mismatch.iter().flatten().next() {
        return Err(CheckFailure::Violation(Violation::StateDivergence {
            phase: "frozen-batch",
            detail: format!("concurrent {which} diverged from the sequential batch answer"),
        }));
    }

    let ops = all_keys.len() as u64 + probes_checked + (readers * 2) as u64;
    Ok((ops, probes_checked))
}

/// Run the full `ShardedCcf` schedule check (all three phases, `cfg.rounds`
/// rounds each).
pub fn check_sharded_ccf(cfg: &CheckConfig) -> Result<Report, CheckFailure> {
    let mut report = Report::default();
    for round in 0..cfg.rounds as u64 {
        report.ops += check_shard_partitioned_round(cfg, round)?;
        let (ops, probes) = check_cross_shard_round(cfg, round)?;
        report.ops += ops;
        report.probes_checked += probes;
        report.rounds += 1;
    }
    Ok(report)
}

/// A concurrently-incrementable counter the harness can interrogate — the
/// seam that lets the same checker drive a real [`ccf_telemetry::Counter`] and
/// the planted [`crate::racy::RacyCounter`].
pub trait CounterSubject: Sync {
    /// Add exactly one to the counter.
    fn add_one(&self);
    /// The current total.
    fn total(&self) -> u64;
}

impl CounterSubject for ccf_telemetry::Counter {
    fn add_one(&self) {
        self.inc();
    }
    fn total(&self) -> u64 {
        self.get()
    }
}

impl CounterSubject for crate::racy::RacyCounter {
    fn add_one(&self) {
        self.increment();
    }
    fn total(&self) -> u64 {
        self.get()
    }
}

/// Drive `subject` with `cfg.threads × cfg.ops_per_thread × cfg.rounds`
/// increments across scoped threads; the sequential spec is exact arithmetic.
pub fn check_counter_subject<S: CounterSubject>(
    subject: &S,
    cfg: &CheckConfig,
) -> Result<Report, CheckFailure> {
    let before = subject.total();
    let per_thread = cfg.ops_per_thread * cfg.rounds;
    let barrier = Barrier::new(cfg.threads);
    std::thread::scope(|s| {
        for _ in 0..cfg.threads {
            let barrier = &barrier;
            let subject = &*subject;
            s.spawn(move || {
                barrier.wait();
                for i in 0..per_thread {
                    subject.add_one();
                    if i % 128 == 0 {
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
    let expected = before + (cfg.threads * per_thread) as u64;
    let observed = subject.total();
    if observed != expected {
        return Err(CheckFailure::Violation(Violation::LostUpdates {
            expected: expected - before,
            observed: observed - before,
        }));
    }
    Ok(Report {
        ops: (cfg.threads * per_thread) as u64,
        probes_checked: 0,
        rounds: cfg.rounds as u64,
    })
}

/// Ground-truth tally one telemetry worker accumulates while executing its
/// schedule.
#[derive(Debug, Default, Clone, Copy)]
struct TelemetryTally {
    counter: u64,
    gauge_net: i64,
    observes: u64,
    observe_sum: u64,
    snapshot_regression: Option<(u64, u64)>,
}

/// Drive a live [`Telemetry`] registry through a seeded concurrent schedule and
/// verify every instrument against the executed ground truth.
pub fn check_telemetry(cfg: &CheckConfig) -> Result<Report, CheckFailure> {
    let telemetry = Telemetry::enabled();
    let mut tallies: Vec<TelemetryTally> = vec![TelemetryTally::default(); cfg.threads];
    let barrier = Barrier::new(cfg.threads);
    let per_thread = cfg.ops_per_thread * cfg.rounds;
    std::thread::scope(|s| {
        for (w, slot) in tallies.iter_mut().enumerate() {
            let telemetry = telemetry.clone();
            let barrier = &barrier;
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7E1E ^ (w as u64) << 16);
            s.spawn(move || {
                // Resolving inside the worker exercises first-use registration
                // races: every thread must end up sharing one core per series.
                let ops = telemetry.counter("ccf_analysis_ops_total", "schedule ops", &[]);
                let inflight = telemetry.gauge("ccf_analysis_inflight_rows", "rows in flight", &[]);
                let sizes = telemetry.histogram(
                    "ccf_analysis_batch_keys",
                    "scheduled batch sizes",
                    &buckets::log2(1 << 10),
                    &[],
                );
                let mut tally = TelemetryTally::default();
                let mut last_seen = 0u64;
                barrier.wait();
                for i in 0..per_thread {
                    match rng.gen_range(0..100u32) {
                        0..=49 => {
                            ops.inc();
                            tally.counter += 1;
                        }
                        50..=69 => {
                            let d: i64 = rng.gen_range(-3..=3);
                            if d >= 0 {
                                inflight.add(d);
                            } else {
                                inflight.sub(-d);
                            }
                            tally.gauge_net += d;
                        }
                        70..=94 => {
                            let v: u64 = rng.gen_range(0..1 << 10);
                            sizes.observe(v);
                            tally.observes += 1;
                            tally.observe_sum += v;
                        }
                        _ => {
                            // Counters must be monotone across ordered snapshots.
                            if let Some(seen) =
                                telemetry.snapshot().counter("ccf_analysis_ops_total", &[])
                            {
                                if seen < last_seen && tally.snapshot_regression.is_none() {
                                    tally.snapshot_regression = Some((last_seen, seen));
                                }
                                last_seen = seen;
                            }
                        }
                    }
                    if i % 128 == 0 {
                        std::thread::yield_now();
                    }
                }
                *slot = tally;
            });
        }
    });

    for (w, tally) in tallies.iter().enumerate() {
        if let Some((was, now)) = tally.snapshot_regression {
            return Err(CheckFailure::Violation(Violation::NonMonotonicSnapshot {
                instrument: "ccf_analysis_ops_total".to_string(),
                detail: format!("worker {w} saw {was} then {now}"),
            }));
        }
    }
    let snap = telemetry.snapshot();
    let expected_counter: u64 = tallies.iter().map(|t| t.counter).sum();
    let observed_counter = snap.counter("ccf_analysis_ops_total", &[]).unwrap_or(0);
    if observed_counter != expected_counter {
        return Err(CheckFailure::Violation(Violation::CounterDrift {
            instrument: "ccf_analysis_ops_total".to_string(),
            expected: expected_counter,
            observed: observed_counter,
        }));
    }
    let expected_gauge: i64 = tallies.iter().map(|t| t.gauge_net).sum();
    let observed_gauge = snap.gauge("ccf_analysis_inflight_rows", &[]).unwrap_or(0);
    if observed_gauge != expected_gauge {
        return Err(CheckFailure::Violation(Violation::CounterDrift {
            instrument: "ccf_analysis_inflight_rows".to_string(),
            expected: expected_gauge.unsigned_abs(),
            observed: observed_gauge.unsigned_abs(),
        }));
    }
    let expected_observes: u64 = tallies.iter().map(|t| t.observes).sum();
    let expected_sum: u64 = tallies.iter().map(|t| t.observe_sum).sum();
    match snap.histogram("ccf_analysis_batch_keys", &[]) {
        Some(h) if h.count() != expected_observes || h.sum != expected_sum => {
            return Err(CheckFailure::Violation(Violation::HistogramDrift {
                instrument: "ccf_analysis_batch_keys".to_string(),
                detail: format!(
                    "count {} (expected {expected_observes}), sum {} (expected {expected_sum})",
                    h.count(),
                    h.sum
                ),
            }));
        }
        None if expected_observes > 0 => {
            return Err(CheckFailure::Violation(Violation::HistogramDrift {
                instrument: "ccf_analysis_batch_keys".to_string(),
                detail: "series missing from the final snapshot".to_string(),
            }));
        }
        _ => {}
    }
    Ok(Report {
        ops: (cfg.threads * per_thread) as u64,
        probes_checked: 0,
        rounds: cfg.rounds as u64,
    })
}
