//! Workspace file discovery and the top-level lint entry point.

use std::path::{Path, PathBuf};

use crate::allowlist::Allowlist;
use crate::lints::{lint_sources, LintRun};
use crate::source::SourceFile;
use crate::AnalysisError;

/// Directories never scanned: build output, vendored third-party stand-ins
/// (their internal style is not this repo's to lint) and VCS metadata.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git"];

/// Default allowlist file name, resolved relative to the workspace root.
pub const DEFAULT_ALLOWLIST: &str = "ccf-lint.allow";

/// Collect every lintable `.rs` file under `root`, sorted by path.
pub fn collect_sources(root: &Path) -> Result<Vec<SourceFile>, AnalysisError> {
    let mut paths: Vec<PathBuf> = Vec::new();
    walk(root, root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let text = std::fs::read_to_string(root.join(&p)).map_err(|e| AnalysisError::Io {
            path: p.display().to_string(),
            message: e.to_string(),
        })?;
        let rel = p.to_string_lossy().replace('\\', "/");
        files.push(SourceFile::parse(&rel, &text));
    }
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), AnalysisError> {
    let entries = std::fs::read_dir(dir).map_err(|e| AnalysisError::Io {
        path: dir.display().to_string(),
        message: e.to_string(),
    })?;
    for entry in entries {
        let entry = entry.map_err(|e| AnalysisError::Io {
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Load the allowlist at `path`; a missing *default* allowlist is an empty one,
/// a missing explicitly-requested file is an error (handled by the caller).
pub fn load_allowlist(path: &Path) -> Result<Allowlist, AnalysisError> {
    match std::fs::read_to_string(path) {
        Ok(text) => Allowlist::parse(&text).map_err(|e| AnalysisError::Allowlist {
            path: path.display().to_string(),
            message: e.to_string(),
        }),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Allowlist::empty()),
        Err(e) => Err(AnalysisError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        }),
    }
}

/// Lint the workspace rooted at `root` with its default allowlist
/// (`<root>/ccf-lint.allow` if present).
pub fn lint_workspace(root: &Path) -> Result<LintRun, AnalysisError> {
    let allowlist = load_allowlist(&root.join(DEFAULT_ALLOWLIST))?;
    let files = collect_sources(root)?;
    Ok(lint_sources(&files, &allowlist))
}

/// Find the workspace root at or above `start`: the nearest ancestor whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, AnalysisError> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Ok(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    Err(AnalysisError::NoWorkspaceRoot {
        start: start.display().to_string(),
    })
}
