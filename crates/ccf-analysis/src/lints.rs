//! The lint rules and the engine that runs them.
//!
//! Every rule is a repo invariant with a machine-readable ID, a one-line
//! summary and a fix-it hint. Findings are emitted in the stable format
//! `RULE-ID file:line message` (see [`crate::report`]); deliberate exceptions
//! live in the workspace allowlist (see [`crate::allowlist`]), never in the
//! rule code.

use crate::allowlist::Allowlist;
use crate::report::Finding;
use crate::source::{Line, SourceFile};

/// Static description of one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleInfo {
    /// Machine-readable ID, e.g. `CCF-L001`. Stable: CI annotations and editor
    /// integrations key on it.
    pub id: &'static str,
    /// Short name (kebab-case).
    pub name: &'static str,
    /// What the rule enforces.
    pub summary: &'static str,
    /// How to fix a finding.
    pub hint: &'static str,
}

/// The rule catalog, in ID order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "CCF-L001",
        name: "flooring-millis-cast",
        summary: "load-factor/millis expressions must not be floored with `as u32`/`as u64`; \
                  rounding goes through `.round()` (the blessed constructors `TableFull::at` and \
                  `InsertFailure::kicks_exhausted_at` already do)",
        hint: "call .round() before the cast, or build the value via TableFull::at / \
               InsertFailure::kicks_exhausted_at",
    },
    RuleInfo {
        id: "CCF-L002",
        name: "lib-panic-path",
        summary: "non-test, non-bin library code must not call unwrap()/expect()/panic!; typed \
                  errors only (the PR 3/4 convention). The documented panicking-facade idiom \
                  `try_x().unwrap_or_else(|e| panic!(…))` is blessed",
        hint: "return a typed error (ParamsError / InsertFailure / CcfError / …), restructure \
               so the invariant is expressed without a panic, or add an allowlist entry with a \
               justification",
    },
    RuleInfo {
        id: "CCF-L003",
        name: "unsafe-without-safety",
        summary: "every `#[allow(unsafe_code)]` must be preceded by a `// SAFETY:` comment \
                  explaining why the unsafe block is sound",
        hint: "add a `// SAFETY: …` (or doc comment containing `SAFETY:`) in the comment block \
               directly above the attribute",
    },
    RuleInfo {
        id: "CCF-L004",
        name: "salt-collision",
        summary: "hash-purpose constants (`pub mod purpose`) must be pairwise distinct — two \
                  components sharing a salt index would draw correlated hashers",
        hint: "pick an unused index; scalar purposes are small integers, ATTRIBUTE_BASE and \
               BLOOM_BASE anchor disjoint ranges",
    },
    RuleInfo {
        id: "CCF-L005",
        name: "instrument-name",
        summary: "telemetry instrument names must follow the documented layer_noun_unit \
                  convention: snake_case with a known layer prefix; counters end in `_total`, \
                  histograms in a unit suffix (_ns/_seconds/_bytes/_depth/_keys), gauges in a \
                  unit that is not `_total`",
        hint: "rename the series (see the README instrument catalog) or extend the documented \
               convention first",
    },
];

/// Look up a rule by ID.
pub fn rule(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Outcome of linting a set of files.
#[derive(Debug, Clone)]
pub struct LintRun {
    /// Findings that survived the allowlist, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Findings suppressed by allowlist entries.
    pub suppressed: usize,
}

/// Lint a set of scanned files against the full rule catalog.
pub fn lint_sources(files: &[SourceFile], allowlist: &Allowlist) -> LintRun {
    let mut findings = Vec::new();
    for file in files {
        check_flooring_cast(file, &mut findings);
        check_lib_panic(file, &mut findings);
        check_unsafe_safety(file, &mut findings);
        check_salt_collision(file, &mut findings);
        check_instrument_names(file, &mut findings);
    }
    let total = findings.len();
    let findings: Vec<Finding> = findings
        .into_iter()
        .filter(|f| !allowlist.suppresses(f))
        .collect();
    let mut findings = findings;
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    LintRun {
        suppressed: total - findings.len(),
        files_scanned: files.len(),
        findings,
    }
}

fn push(
    findings: &mut Vec<Finding>,
    rule: &'static RuleInfo,
    file: &SourceFile,
    line_no: usize,
    message: String,
) {
    findings.push(Finding {
        rule: rule.id,
        path: file.path.clone(),
        line: line_no,
        message,
        raw_line: file
            .lines
            .get(line_no.saturating_sub(1))
            .map(|l| l.raw.clone())
            .unwrap_or_default(),
    });
}

/// CCF-L001 — flooring `as u32`/`as u64` casts on load-factor/millis expressions.
///
/// The class of bug this pins down recurred twice (PR 2 and PR 6): a
/// `(x * 1000.0) as u32` silently floors, so 1/16 = 62.5 millis reports as 62.
/// Any line that casts to `u32`/`u64` while mentioning a `1000.0` scale, a
/// `load_factor` or a `millis` value must round explicitly.
fn check_flooring_cast(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.kind.is_test_context {
        return;
    }
    let r = &RULES[0];
    for (n, line) in file.numbered() {
        if line.in_test_region {
            continue;
        }
        let code = &line.code;
        let casts = code.contains(" as u32") || code.contains(" as u64");
        let millis_expr =
            code.contains("1000.0") || code.contains("load_factor") || code.contains("millis");
        if casts && millis_expr && !code.contains(".round(") {
            push(
                findings,
                r,
                file,
                n,
                "flooring integer cast on a load-factor/millis expression (use .round() or a \
                 blessed rounding constructor)"
                    .to_string(),
            );
        }
    }
}

/// CCF-L002 — `unwrap()` / `expect()` / `panic!` in non-test, non-bin library code.
fn check_lib_panic(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.kind.is_test_context || file.kind.is_bin {
        return;
    }
    let r = &RULES[1];
    for (n, line) in file.numbered() {
        if line.in_test_region {
            continue;
        }
        let code = &line.code;
        // Blessed idiom: a fallible `try_` core with a one-line documented
        // panicking facade — `.unwrap_or_else(|e| panic!("{e}"))` and friends.
        let facade = code.contains("unwrap_or_else") && code.contains("panic!(");
        if facade {
            continue;
        }
        for token in [".unwrap()", ".expect(", "panic!("] {
            if code.contains(token) {
                push(
                    findings,
                    r,
                    file,
                    n,
                    format!("`{token}` in library code — typed errors only"),
                );
            }
        }
    }
}

/// CCF-L003 — `#[allow(unsafe_code)]` requires a `SAFETY:` comment directly above.
fn check_unsafe_safety(file: &SourceFile, findings: &mut Vec<Finding>) {
    let r = &RULES[2];
    for (n, line) in file.numbered() {
        if !line.code.contains("allow(unsafe_code)") {
            continue;
        }
        // Walk upward through the contiguous block of comments, attributes and
        // blank lines; one of them must carry SAFETY:.
        let mut justified = false;
        for prev in file.lines[..n - 1].iter().rev() {
            let is_annotation = prev.raw.trim().is_empty()
                || prev.comment.trim() != ""
                || prev.code.trim_start().starts_with("#[")
                || prev.code.trim_start().starts_with("#![");
            if !is_annotation {
                break;
            }
            if prev.comment.contains("SAFETY:") || prev.raw.contains("SAFETY:") {
                justified = true;
                break;
            }
        }
        if !justified {
            push(
                findings,
                r,
                file,
                n,
                "#[allow(unsafe_code)] without a preceding // SAFETY: comment".to_string(),
            );
        }
    }
}

/// A parsed `pub const NAME: u64 = <literal>;` from a `mod purpose` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaltConst {
    pub name: String,
    pub value: u64,
    pub line: usize,
}

/// Extract the salt constants of every `mod purpose { … }` block in `file`.
///
/// Public so the cross-check test can compare the parse against
/// `ccf_hash::purpose::ALL` — if this parser ever rots and sees nothing, that
/// test fails rather than the rule silently passing.
pub fn parse_purpose_salts(file: &SourceFile) -> Vec<SaltConst> {
    let mut out = Vec::new();
    let mut in_purpose = false;
    let mut depth: i64 = 0;
    for (n, line) in file.numbered() {
        let code = &line.code;
        if !in_purpose {
            if code.contains("mod purpose") && code.contains('{') {
                in_purpose = true;
                depth = net_braces(code);
                if depth <= 0 {
                    in_purpose = false;
                }
            }
            continue;
        }
        depth += net_braces(code);
        if let Some(c) = parse_const_line(code, n) {
            out.push(c);
        }
        if depth <= 0 {
            in_purpose = false;
        }
    }
    out
}

fn net_braces(code: &str) -> i64 {
    let mut d = 0i64;
    for ch in code.chars() {
        match ch {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

fn parse_const_line(code: &str, line: usize) -> Option<SaltConst> {
    let rest = code.trim_start();
    let rest = rest.strip_prefix("pub const ")?;
    let (name, rest) = rest.split_once(':')?;
    let (ty, rest) = rest.split_once('=')?;
    if ty.trim() != "u64" {
        return None;
    }
    let literal = rest.trim().trim_end_matches(';').trim().replace('_', "");
    let value = if let Some(hex) = literal.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()?
    } else {
        literal.parse().ok()?
    };
    Some(SaltConst {
        name: name.trim().to_string(),
        value,
        line,
    })
}

/// CCF-L004 — pairwise-distinct hash-purpose salts.
fn check_salt_collision(file: &SourceFile, findings: &mut Vec<Finding>) {
    let r = &RULES[3];
    let consts = parse_purpose_salts(file);
    for (i, b) in consts.iter().enumerate() {
        if let Some(a) = consts[..i].iter().find(|a| a.value == b.value) {
            push(
                findings,
                r,
                file,
                b.line,
                format!(
                    "hash salt {} = {} collides with {} (line {})",
                    b.name, b.value, a.name, a.line
                ),
            );
        }
    }
}

/// Layer prefixes the instrument convention recognizes (README "Observability").
const LAYER_PREFIXES: &[&str] = &["ccf", "cuckoo", "loadgen", "loopback"];
/// Unit suffixes a histogram name may end with.
const HISTOGRAM_UNITS: &[&str] = &["_ns", "_seconds", "_bytes", "_depth", "_keys"];

/// CCF-L005 — telemetry instrument names follow `layer_noun_unit`.
///
/// Scans for `.counter("…`, `.gauge("…`, `.histogram("…` call sites whose first
/// argument is a string literal (registrations *and* snapshot lookups — both
/// must agree on the catalog). Calls whose name is a variable are skipped: the
/// convention is enforced where names are written down.
fn check_instrument_names(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.kind.is_test_context {
        return;
    }
    let r = &RULES[4];
    for (n, line) in file.numbered() {
        if line.in_test_region {
            continue;
        }
        for (method, kind) in [
            (".counter(", InstrumentKind::Counter),
            (".gauge(", InstrumentKind::Gauge),
            (".histogram(", InstrumentKind::Histogram),
        ] {
            let mut from = 0usize;
            while let Some(pos) = line.code[from..].find(method) {
                let after = from + pos + method.len();
                from = after;
                // The name must be a string literal opening on the same line.
                if let Some(name) = leading_string_literal(line, after) {
                    check_instrument_name(file, findings, r, n, kind, &name);
                }
            }
        }
        // Multi-line registration: rustfmt breaks long calls so the literal sits
        // alone on the line after one ending with `.counter(` / `.gauge(` /
        // `.histogram(`.
        if n >= 2 {
            let prev = &file.lines[n - 2];
            for (method, kind) in [
                (".counter(", InstrumentKind::Counter),
                (".gauge(", InstrumentKind::Gauge),
                (".histogram(", InstrumentKind::Histogram),
            ] {
                if prev.code.trim_end().ends_with(method) && !prev.in_test_region {
                    let indent = line.raw.len() - line.raw.trim_start().len();
                    if let Some(name) = leading_string_literal(line, indent) {
                        check_instrument_name(file, findings, r, n, kind, &name);
                    }
                }
            }
        }
    }
}

/// If a string literal opens at or after byte `at` (skipping spaces), return its
/// content. The quote must be genuine string text, not a quote inside a comment
/// — comment bytes show up in the line's `comment` projection.
fn leading_string_literal(line: &Line, at: usize) -> Option<String> {
    let bytes = line.raw.as_bytes();
    let mut i = at;
    while i < bytes.len() && bytes[i] == b' ' {
        i += 1;
    }
    if i >= bytes.len() || bytes[i] != b'"' {
        return None;
    }
    if line.comment.as_bytes().get(i) == Some(&b'"') {
        return None; // commented-out call site
    }
    line.raw[i + 1..].split('"').next().map(|s| s.to_string())
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InstrumentKind {
    Counter,
    Gauge,
    Histogram,
}

fn check_instrument_name(
    file: &SourceFile,
    findings: &mut Vec<Finding>,
    r: &'static RuleInfo,
    line_no: usize,
    kind: InstrumentKind,
    name: &str,
) {
    let mut problems: Vec<String> = Vec::new();
    let snake = !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_lowercase())
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
    if !snake {
        problems.push("not lower_snake_case".to_string());
    } else {
        let layer = name.split('_').next().unwrap_or_default();
        if !LAYER_PREFIXES.contains(&layer) {
            problems.push(format!(
                "unknown layer prefix `{layer}` (expected one of {LAYER_PREFIXES:?})"
            ));
        }
        match kind {
            InstrumentKind::Counter => {
                if !name.ends_with("_total") {
                    problems.push("counter names end in `_total`".to_string());
                }
            }
            InstrumentKind::Histogram => {
                if !HISTOGRAM_UNITS.iter().any(|u| name.ends_with(u)) {
                    problems.push(format!(
                        "histogram names end in a unit suffix {HISTOGRAM_UNITS:?}"
                    ));
                }
            }
            InstrumentKind::Gauge => {
                if name.ends_with("_total") {
                    problems.push("gauge names must not end in `_total`".to_string());
                }
            }
        }
    }
    if !problems.is_empty() {
        push(
            findings,
            r,
            file,
            line_no,
            format!("instrument name `{name}`: {}", problems.join("; ")),
        );
    }
}
