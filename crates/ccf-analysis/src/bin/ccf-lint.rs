//! `ccf-lint` — the workspace's custom lint pass.
//!
//! ```text
//! ccf-lint [--root DIR] [--allowlist FILE] [--rules] [--quiet]
//! ```
//!
//! Output: one line per finding, `RULE-ID file:line message`, sorted by
//! (file, line, rule). Exit codes: 0 clean, 1 findings, 2 usage/IO error.

use std::path::PathBuf;

use ccf_analysis::{exit_code, lint_workspace, load_allowlist, AnalysisError, RULES};

struct Options {
    root: Option<PathBuf>,
    allowlist: Option<PathBuf>,
    list_rules: bool,
    quiet: bool,
}

fn usage() -> &'static str {
    "usage: ccf-lint [--root DIR] [--allowlist FILE] [--rules] [--quiet]\n\
     \n\
     --root DIR        workspace root to lint (default: nearest ancestor with [workspace])\n\
     --allowlist FILE  allowlist file (default: <root>/ccf-lint.allow if present)\n\
     --rules           list the rule catalog and exit\n\
     --quiet           suppress the summary line (findings only)\n\
     \n\
     exit codes: 0 clean, 1 findings, 2 error"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        allowlist: None,
        list_rules: false,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => opts.root = Some(PathBuf::from(v)),
                None => return Err("--root requires a directory argument".to_string()),
            },
            "--allowlist" => match it.next() {
                Some(v) => opts.allowlist = Some(PathBuf::from(v)),
                None => return Err("--allowlist requires a file argument".to_string()),
            },
            "--rules" => opts.list_rules = true,
            "--quiet" | "-q" => opts.quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<i32, AnalysisError> {
    let root = match &opts.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| AnalysisError::Io {
                path: ".".to_string(),
                message: e.to_string(),
            })?;
            ccf_analysis::find_workspace_root(&cwd)?
        }
    };
    let run = match &opts.allowlist {
        Some(path) => {
            // An explicitly-requested allowlist must exist.
            if !path.is_file() {
                return Err(AnalysisError::Io {
                    path: path.display().to_string(),
                    message: "allowlist file not found".to_string(),
                });
            }
            let allowlist = load_allowlist(path)?;
            let files = ccf_analysis::collect_sources(&root)?;
            ccf_analysis::lint_sources(&files, &allowlist)
        }
        None => lint_workspace(&root)?,
    };
    for finding in &run.findings {
        println!("{}", finding.render());
    }
    if !opts.quiet {
        eprintln!(
            "ccf-lint: {} file(s) scanned, {} finding(s), {} suppressed by allowlist",
            run.files_scanned,
            run.findings.len(),
            run.suppressed
        );
    }
    Ok(if run.findings.is_empty() {
        exit_code::CLEAN
    } else {
        exit_code::FINDINGS
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                std::process::exit(exit_code::CLEAN);
            }
            eprintln!("ccf-lint: {msg}");
            eprintln!("{}", usage());
            std::process::exit(exit_code::ERROR);
        }
    };
    if opts.list_rules {
        for r in RULES {
            println!("{}  {}  {}", r.id, r.name, r.summary);
            println!("         fix: {}", r.hint);
        }
        std::process::exit(exit_code::CLEAN);
    }
    match run(&opts) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("ccf-lint: {e}");
            std::process::exit(exit_code::ERROR);
        }
    }
}
