//! A deliberately racy toy structure — the schedule checker's "planted bug".
//!
//! [`RacyCounter`] looks like a lock-protected counter but the "lock" is a
//! check-then-set flag (a classic TOCTOU) and the increment is a non-atomic
//! read-modify-write composed of a separate load and store. Two threads can
//! both observe the flag clear, both enter the critical section, both load the
//! same value and both store `v + 1`: one increment is lost.
//!
//! Everything is built from `Relaxed` atomics, so this is **not** undefined
//! behavior and is ThreadSanitizer/Miri-clean — the races it exhibits are
//! *logical* lost updates, exactly the class of bug a linearizability checker
//! must catch. `yield_now` calls widen the race windows so the lost updates
//! reproduce reliably even on a single-CPU CI box (a yield between the load and
//! the store hands the timeslice to the other thread mid-increment).
//!
//! If the schedule checker ever passes this structure, the checker is broken:
//! `tests/schedule_checker.rs` pins that it is caught.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A counter guarded by a fake lock. See the module docs — do not use for
/// anything but proving the schedule checker has teeth.
#[derive(Debug, Default)]
pub struct RacyCounter {
    guard: AtomicBool,
    value: AtomicU64,
}

impl RacyCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// "Lock", increment, "unlock" — with both the acquisition and the
    /// increment broken in the standard ways.
    pub fn increment(&self) {
        // Broken acquire: check-then-set instead of a compare-and-swap. Both
        // threads can see `false` here…
        while self.guard.load(Ordering::Relaxed) {
            std::thread::yield_now();
        }
        std::thread::yield_now(); // …especially with a yield inside the window.
        self.guard.store(true, Ordering::Relaxed);

        // Broken increment: load and store instead of fetch_add.
        let v = self.value.load(Ordering::Relaxed);
        std::thread::yield_now();
        self.value.store(v + 1, Ordering::Relaxed);

        self.guard.store(false, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}
