//! The allowlist: deliberate, justified exceptions to lint rules.
//!
//! Format (one entry per line, `#` comments, blank lines ignored):
//!
//! ```text
//! RULE-ID  path-prefix  line-substring -- justification
//! ```
//!
//! * `RULE-ID` — the rule being excepted, e.g. `CCF-L002`.
//! * `path-prefix` — workspace-relative path prefix; `crates/ccf-shard/src/`
//!   covers a directory, a full file path covers one file.
//! * `line-substring` — text the *raw* source line must contain for the entry to
//!   apply, so entries survive line-number drift; `*` matches any line. May
//!   contain spaces — it extends to the ` -- ` separator.
//! * `justification` — required free text after ` -- `; an entry without one is
//!   a parse error, because an unexplained exception is indistinguishable from a
//!   silenced bug.

use crate::report::Finding;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub path_prefix: String,
    pub line_substring: String,
    pub justification: String,
    /// 1-indexed line in the allowlist file (for error reporting).
    pub source_line: usize,
}

/// A parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
}

/// A malformed allowlist line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowlistParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for AllowlistParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "allowlist line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AllowlistParseError {}

impl Allowlist {
    /// An empty allowlist (suppresses nothing).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Parse allowlist text.
    pub fn parse(text: &str) -> Result<Self, AllowlistParseError> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (spec, justification) = match line.split_once(" -- ") {
                Some((s, j)) if !j.trim().is_empty() => (s.trim(), j.trim()),
                _ => {
                    return Err(AllowlistParseError {
                        line: line_no,
                        message: "missing ` -- justification` (every exception must say why)"
                            .to_string(),
                    })
                }
            };
            let mut parts = spec.splitn(3, char::is_whitespace);
            let (rule, path, substring) = match (parts.next(), parts.next(), parts.next()) {
                (Some(r), Some(p), Some(s)) if !s.trim().is_empty() => (r, p, s.trim()),
                _ => {
                    return Err(AllowlistParseError {
                        line: line_no,
                        message: "expected `RULE-ID path-prefix line-substring -- justification`"
                            .to_string(),
                    })
                }
            };
            if crate::lints::rule(rule).is_none() {
                return Err(AllowlistParseError {
                    line: line_no,
                    message: format!("unknown rule ID `{rule}`"),
                });
            }
            entries.push(AllowEntry {
                rule: rule.to_string(),
                path_prefix: path.replace('\\', "/"),
                line_substring: substring.to_string(),
                justification: justification.to_string(),
                source_line: line_no,
            });
        }
        Ok(Allowlist { entries })
    }

    /// Does any entry suppress this finding?
    pub fn suppresses(&self, finding: &Finding) -> bool {
        self.entries.iter().any(|e| {
            e.rule == finding.rule
                && finding.path.starts_with(&e.path_prefix)
                && (e.line_substring == "*" || finding.raw_line.contains(&e.line_substring))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, raw: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line: 10,
            message: "m".to_string(),
            raw_line: raw.to_string(),
        }
    }

    #[test]
    fn parses_and_suppresses() {
        let a = Allowlist::parse(
            "# comment\n\
             CCF-L002 crates/ccf-shard/src/ expect(POISONED) -- poisoning propagates a panic\n\
             CCF-L002 crates/ccf-bench/src/ * -- harness crate\n",
        )
        .expect("valid allowlist");
        assert_eq!(a.entries.len(), 2);
        assert!(a.suppresses(&finding(
            "CCF-L002",
            "crates/ccf-shard/src/service.rs",
            "let g = self.shards[s].read().expect(POISONED);"
        )));
        assert!(a.suppresses(&finding(
            "CCF-L002",
            "crates/ccf-bench/src/fpr_experiments.rs",
            "x.unwrap();"
        )));
        // Different rule, same line: not suppressed.
        assert!(!a.suppresses(&finding(
            "CCF-L001",
            "crates/ccf-shard/src/service.rs",
            "let g = self.shards[s].read().expect(POISONED);"
        )));
        // Path outside the prefix: not suppressed.
        assert!(!a.suppresses(&finding(
            "CCF-L002",
            "crates/ccf-core/src/plain.rs",
            "x.expect(POISONED)"
        )));
    }

    #[test]
    fn justification_is_mandatory() {
        let err = Allowlist::parse("CCF-L002 crates/x/src/ *\n").expect_err("must be rejected");
        assert_eq!(err.line, 1);
        assert!(err.message.contains("justification"));
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let err = Allowlist::parse("CCF-L999 crates/x/src/ * -- why\n").expect_err("bad rule");
        assert!(err.message.contains("CCF-L999"));
    }
}
