//! Findings and the stable machine-readable output format.
//!
//! One finding renders as exactly one line:
//!
//! ```text
//! RULE-ID file:line message
//! ```
//!
//! e.g. `CCF-L002 crates/ccf-core/src/plain.rs:58 \`.unwrap()\` in library code`.
//! CI annotations and editor integrations parse this shape; it is pinned by a
//! test and must not change without a major note in the README.

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule ID, e.g. `CCF-L002`.
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-indexed line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// The raw source line (allowlist matching; not part of the output format).
    pub raw_line: String,
}

impl Finding {
    /// Render in the stable `RULE-ID file:line message` format.
    pub fn render(&self) -> String {
        format!("{} {}:{} {}", self.rule, self.path, self.line, self.message)
    }
}

/// Exit codes of the `ccf-lint` binary (stable, for CI and editors).
pub mod exit_code {
    /// The workspace is clean.
    pub const CLEAN: i32 = 0;
    /// At least one finding was reported.
    pub const FINDINGS: i32 = 1;
    /// Usage, IO or allowlist-parse error — the lint did not complete.
    pub const ERROR: i32 = 2;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The output format is part of the tool's contract — pinned byte-for-byte.
    #[test]
    fn finding_format_is_stable() {
        let f = Finding {
            rule: "CCF-L002",
            path: "crates/ccf-core/src/plain.rs".to_string(),
            line: 58,
            message: "`.unwrap()` in library code — typed errors only".to_string(),
            raw_line: String::new(),
        };
        assert_eq!(
            f.render(),
            "CCF-L002 crates/ccf-core/src/plain.rs:58 `.unwrap()` in library code — typed errors only"
        );
    }
}
