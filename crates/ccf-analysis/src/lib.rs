//! Static analysis and concurrency checking for the conditional-cuckoo-filter
//! workspace.
//!
//! Three layers, all std-only (zero new dependencies — the toolchain is the
//! only thing this crate assumes):
//!
//! 1. **A custom lint engine** ([`lints`], [`source`], [`allowlist`],
//!    [`report`], [`workspace`]) — a line/token scanner over every workspace
//!    `.rs` file enforcing repo-specific invariants that `clippy` cannot know:
//!    no flooring casts on load-factor/millis math outside the blessed rounding
//!    constructors, no `unwrap()`/`expect()`/`panic!` on library paths (typed
//!    errors only), every `unsafe` opt-in preceded by a `// SAFETY:` comment,
//!    pairwise-distinct `purpose::*` hash salts, and telemetry instrument names
//!    following the `layer_noun_unit` convention. Each rule has a stable
//!    machine-readable ID (`CCF-L001`…), a fix-it hint, and an allowlist escape
//!    hatch that *requires a justification*.
//! 2. **A concurrency schedule checker** ([`schedule`]) — a deterministic,
//!    seeded interleaving-stress harness that drives `ShardedCcf` and
//!    `Telemetry` through randomized concurrent schedules and verifies the
//!    results against sequential specifications; [`racy::RacyCounter`] is the
//!    planted bug proving the checker has teeth.
//! 3. **The `ccf-lint` binary** — stable one-line-per-finding output
//!    (`RULE-ID file:line message`) and exit codes (0 clean / 1 findings /
//!    2 error) for CI gating.

pub mod allowlist;
pub mod lints;
pub mod racy;
pub mod report;
pub mod schedule;
pub mod source;
pub mod workspace;

pub use allowlist::{AllowEntry, Allowlist, AllowlistParseError};
pub use lints::{lint_sources, parse_purpose_salts, rule, LintRun, RuleInfo, RULES};
pub use racy::RacyCounter;
pub use report::{exit_code, Finding};
pub use schedule::{
    check_counter_subject, check_sharded_ccf, check_telemetry, CheckConfig, CheckFailure,
    CounterSubject, Report, Violation,
};
pub use source::SourceFile;
pub use workspace::{
    collect_sources, find_workspace_root, lint_workspace, load_allowlist, DEFAULT_ALLOWLIST,
};

/// Errors from workspace discovery and allowlist loading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// Reading a file or directory failed.
    Io {
        /// The path that failed.
        path: String,
        /// The underlying IO error, stringified.
        message: String,
    },
    /// The allowlist file exists but does not parse.
    Allowlist {
        /// The allowlist path.
        path: String,
        /// The parse error.
        message: String,
    },
    /// No ancestor of `start` has a `Cargo.toml` declaring `[workspace]`.
    NoWorkspaceRoot {
        /// Where the search started.
        start: String,
    },
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::Io { path, message } => write!(f, "io error at {path}: {message}"),
            AnalysisError::Allowlist { path, message } => {
                write!(f, "allowlist {path}: {message}")
            }
            AnalysisError::NoWorkspaceRoot { start } => write!(
                f,
                "no workspace root found at or above {start} (looked for a Cargo.toml with [workspace])"
            ),
        }
    }
}

impl std::error::Error for AnalysisError {}
