//! Offline vendored stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate implements the
//! subset of the criterion 0.5 API the workspace's three bench harnesses use:
//! benchmark groups, `bench_function` / `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `sample_size`, and the [`criterion_group!`] / [`criterion_main!`]
//! macros (both the simple and the `name/config/targets` forms).
//!
//! Measurement is intentionally simple — median of `sample_size` wall-clock samples
//! after a short warm-up, printed as a plain-text table line with derived throughput.
//! It has none of criterion's statistical machinery (no outlier analysis, no
//! comparison against saved baselines, no plots), which is fine for the spot-check
//! role benches play in an offline CI; absolute numbers remain honest wall-clock
//! measurements.
//!
//! Use `cargo bench` as usual. `--quick` reduces sample counts further; a positional
//! filter argument restricts which benchmarks run, mirroring criterion's CLI.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in favour of
/// `std::hint::black_box`, but still widely imported).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Work-rate annotation for a benchmark group; printed as derived elements/sec or
/// bytes/sec next to the time per iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The measured routine processes this many logical elements per iteration.
    Elements(u64),
    /// The measured routine processes this many bytes per iteration.
    Bytes(u64),
    /// The measured routine decodes this many bytes per iteration.
    BytesDecimal(u64),
}

/// A benchmark identifier: function name plus optional parameter, as produced by
/// [`BenchmarkId::new`] or [`BenchmarkId::from_parameter`].
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call, filled by the harness.
    measured: Option<Duration>,
}

impl Bencher {
    /// Measures `routine`: a short warm-up, then `samples` timed runs; records the
    /// median per-run wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed run (populates caches, triggers lazy init).
        black_box(routine());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.measured = Some(times[times.len() / 2]);
    }

    /// Batched measurement: `setup` runs untimed before each timed `routine` run.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.measured = Some(times[times.len() / 2]);
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`]; ignored by this harness.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small input batches.
    SmallInput,
    /// Large input batches.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A named collection of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a work rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Overrides the per-benchmark measurement budget (accepted for API
    /// compatibility; this harness is bounded by sample count, not time).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, |b| f(b));
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id, |b| f(b, input));
        self
    }

    fn run(&mut self, id: &BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches_filter(&full) {
            return;
        }
        let mut bencher = Bencher {
            samples: self.criterion.sample_size,
            measured: None,
        };
        f(&mut bencher);
        match bencher.measured {
            Some(t) => println!("{}", render_line(&full, t, self.throughput)),
            None => println!("{full:<60} (no measurement: closure never called iter)"),
        }
    }

    /// Ends the group (printing is incremental, so this is a no-op marker).
    pub fn finish(&mut self) {}
}

fn render_line(name: &str, t: Duration, throughput: Option<Throughput>) -> String {
    let per_iter = format_duration(t);
    let rate = throughput.map(|tp| {
        let secs = t.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Elements(n) => format!("  {:>14}/s", format_si(n as f64 / secs, "elem")),
            Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
                format!("  {:>14}/s", format_si(n as f64 / secs, "B"))
            }
        }
    });
    format!("{name:<60} {per_iter:>12}{}", rate.unwrap_or_default())
}

fn format_duration(t: Duration) -> String {
    let ns = t.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn format_si(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.2} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.1} {unit}")
    }
}

/// The harness entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        // Mirror criterion's CLI shape loosely: `--quick` shrinks samples, the first
        // non-flag positional arg is a substring filter. Harness flags cargo passes
        // (e.g. `--bench`) are ignored.
        let quick = args.iter().any(|a| a == "--quick");
        let filter = args
            .iter()
            .skip(1)
            .find(|a| !a.starts_with('-') && *a != "bench")
            .cloned();
        Criterion {
            sample_size: if quick { 3 } else { 10 },
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (criterion's minimum is 10;
    /// this harness accepts anything ≥ 2).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for API compatibility; this harness is bounded by sample count.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; warm-up is fixed at one untimed run.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.matches_filter(name) {
            let mut bencher = Bencher {
                samples: self.sample_size,
                measured: None,
            };
            f(&mut bencher);
            if let Some(t) = bencher.measured {
                println!("{}", render_line(name, t, None));
            }
        }
        self
    }

    /// Criterion calls this after all groups; a no-op here.
    pub fn final_summary(&mut self) {}

    fn matches_filter(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }
}

/// Declares a group of benchmark functions, in either upstream form:
///
/// ```ignore
/// criterion_group!(benches, bench_a, bench_b);
/// criterion_group! {
///     name = benches;
///     config = Criterion::default().sample_size(10);
///     targets = bench_a, bench_b
/// }
/// ```
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs one or more [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
