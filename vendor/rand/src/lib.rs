//! Offline vendored stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so this crate
//! implements the (small) subset of the `rand` 0.8 API the workspace actually uses:
//!
//! - [`RngCore`] / [`SeedableRng`] / [`Rng`] traits
//! - [`rngs::StdRng`] (a deterministic xoshiro256++ generator — *not* the same stream
//!   as upstream's ChaCha12, but the workspace only relies on seeded determinism,
//!   never on a specific stream)
//! - `gen`, `gen_bool`, `gen_range` over half-open and inclusive integer/float ranges
//! - [`seq::SliceRandom::shuffle`] (Fisher–Yates)
//!
//! The streams are stable across runs and platforms for a given seed, which is what
//! the experiment binaries and property tests depend on.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{SampleRange, Standard};

/// Core trait for random number generators: raw word output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a fixed-size byte array for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator by expanding a 64-bit seed (via SplitMix64).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm);
            let bytes = word.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: distributions::Distribution<T>,
    {
        <Standard as distributions::Distribution<T>>::sample(&Standard, self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.gen();
        u < p
    }

    /// Samples uniformly from `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A non-deterministically seeded [`rngs::StdRng`], matching `rand::thread_rng`'s
/// role. Entropy comes from the system clock and an address-space probe; adequate for
/// shuffling, not for cryptography.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let t = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0xDEAD_BEEF);
    let probe = &t as *const _ as u64;
    <rngs::StdRng as SeedableRng>::seed_from_u64(t ^ probe.rotate_left(32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(3..=5);
            assert!((3..=5).contains(&y));
            let f: f64 = rng.gen_range(1.0..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
