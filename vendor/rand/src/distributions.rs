//! Sampling traits: the `Standard` distribution and uniform range sampling.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over all values for integers and
/// `bool`, uniform in `[0, 1)` for floats. Backs [`crate::Rng::gen`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<i128> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
        <Standard as Distribution<u128>>::sample(self, rng) as i128
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled uniformly, as accepted by [`crate::Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a single uniform sample from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Widening-multiply bound reduction (Lemire): maps a uniform `u64` into `[0, n)`
/// with negligible bias for the bound sizes this workspace uses.
#[inline]
pub(crate) fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + bounded_u64(rng, span) as $t
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + bounded_u64(rng, span + 1) as $t
                }
            }
        )*
    };
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = self.end.wrapping_sub(self.start) as $u as u64;
                    self.start.wrapping_add(bounded_u64(rng, span) as $t)
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = end.wrapping_sub(start) as $u as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(bounded_u64(rng, span + 1) as $t)
                }
            }
        )*
    };
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let u: f64 = <Standard as Distribution<f64>>::sample(&Standard, rng);
                    let v = self.start as f64 + u * (self.end as f64 - self.start as f64);
                    // Rounding can land exactly on `end`; clamp back inside.
                    if v as $t >= self.end { self.start } else { v as $t }
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let u: f64 = <Standard as Distribution<f64>>::sample(&Standard, rng);
                    (start as f64 + u * (end as f64 - start as f64)) as $t
                }
            }
        )*
    };
}

impl_sample_range_float!(f32, f64);
