//! Sequence helpers, mirroring `rand::seq`.

use crate::distributions::bounded_u64;
use crate::RngCore;

/// Extension methods on slices that consume randomness.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = bounded_u64(rng, (i + 1) as u64) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[bounded_u64(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle is astronomically unlikely to be identity"
        );
    }

    #[test]
    fn choose_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1, 2, 3];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
