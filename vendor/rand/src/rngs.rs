//! Named generator types, mirroring `rand::rngs`.

use crate::{RngCore, SeedableRng};

/// The workspace's standard seeded generator: xoshiro256++.
///
/// Upstream `rand`'s `StdRng` is ChaCha12; the streams differ, but every consumer in
/// this workspace treats `StdRng` as an opaque deterministic source, so only
/// seed-stability matters. xoshiro256++ passes BigCrush and is much smaller.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// The generator's raw xoshiro256++ state, for exact-state persistence: a filter
    /// snapshot that stores these four words and restores them with
    /// [`StdRng::from_state`] continues the *same* random stream, so post-restore
    /// draws (e.g. cuckoo kick victim choices) are bit-identical to the
    /// never-persisted generator.
    #[inline]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a state captured by [`StdRng::state`]. An all-zero
    /// state (a xoshiro fixed point, never produced by a live generator) is nudged
    /// the same way seeding does, so the result is always a working generator.
    #[inline]
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return Self::from_seed([0; 32]);
        }
        StdRng { s }
    }

    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // An all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xD1B5_4A32_D192_ED03,
                0xAEF1_7502_B3DD_9156,
                1,
            ];
        }
        StdRng { s }
    }
}

/// Alias kept for call sites that name the small generator explicitly.
pub type SmallRng = StdRng;
