//! Offline vendored stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to crates.io, so this crate reimplements the
//! subset of proptest's API the workspace's property suites use:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]` header)
//! - [`strategy::Strategy`] with range, `any::<T>()`, tuple and collection strategies
//! - [`collection::vec`] / [`collection::hash_set`]
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`]
//! - [`test_runner::ProptestConfig`] honouring the `PROPTEST_CASES` env var
//!
//! Differences from upstream, deliberately accepted for an offline test harness:
//!
//! - **No shrinking.** A failing case panics with the case index; cases are derived
//!   deterministically from the test name, so the failure reproduces exactly on rerun.
//! - **Deterministic by default.** Upstream seeds from OS entropy unless a
//!   `proptest-regressions` file exists; here every case seed is a pure function of
//!   `(test name, case index)`, which keeps tier-1 CI runs reproducible.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Asserts a condition inside a [`proptest!`] body.
///
/// Upstream returns a `TestCaseError` so the runner can shrink; without shrinking a
/// panic carries exactly the same information, so this expands to [`assert!`].
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a [`proptest!`] body. Expands to [`assert_eq!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a [`proptest!`] body. Expands to [`assert_ne!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests.
///
/// Supported grammar (the subset upstream's macro accepts that this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///
///     /// doc comments and attributes pass through
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(any::<u32>(), 1..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
///
/// Each test runs `cases` deterministic iterations (from the config, or the
/// `PROPTEST_CASES` env var, default 64). On failure the panic message names the case
/// index; rerunning reproduces it exactly.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let cases = config.resolved_cases();
                for case in 0..cases {
                    let mut runner_rng =
                        $crate::test_runner::case_rng(concat!(module_path!(), "::", stringify!($name)), case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut runner_rng);)+
                    let run = move || $body;
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest case {case}/{cases} of {} failed (deterministic; rerun reproduces it)",
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
