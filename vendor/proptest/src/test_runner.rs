//! Test-runner configuration and deterministic per-case RNG derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default number of cases per property when neither the config nor the
/// `PROPTEST_CASES` environment variable says otherwise.
///
/// Upstream defaults to 256; this workspace pins 64 so tier-1 CI stays fast (the
/// suites run every filter variant per case, which is comparatively expensive).
pub const DEFAULT_CASES: u32 = 64;

/// Runner configuration, mirroring the fields of upstream's `ProptestConfig` that the
/// workspace sets.
#[derive(Clone, Debug, Default)]
pub struct ProptestConfig {
    /// Number of generated cases per property. `None` defers to `PROPTEST_CASES` or
    /// [`DEFAULT_CASES`] at run time.
    pub cases: Option<u32>,
}

impl ProptestConfig {
    /// A config that runs exactly `cases` cases, ignoring the environment.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases: Some(cases) }
    }

    /// Resolves the case count: explicit config, then `PROPTEST_CASES`, then
    /// [`DEFAULT_CASES`].
    pub fn resolved_cases(&self) -> u32 {
        if let Some(n) = self.cases {
            return n;
        }
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CASES)
    }
}

/// Derives the deterministic RNG for one test case.
///
/// The seed is a pure FNV-1a hash of the fully-qualified test name mixed with the
/// case index, so every property walks a fixed, reproducible sequence of cases —
/// independent of execution order, parallelism, or platform.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^= case as u64;
    h = h.wrapping_mul(0x1000_0000_01b3);
    StdRng::seed_from_u64(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn case_rng_is_deterministic_and_name_sensitive() {
        let a: Vec<u64> = {
            let mut r = case_rng("mod::t1", 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = case_rng("mod::t1", 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = case_rng("mod::t2", 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let d: Vec<u64> = {
            let mut r = case_rng("mod::t1", 1);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn with_cases_overrides_everything() {
        assert_eq!(ProptestConfig::with_cases(7).resolved_cases(), 7);
    }
}
