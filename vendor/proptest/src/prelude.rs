//! The glob-import surface (`use proptest::prelude::*`), matching what the
//! workspace's test files expect to find in scope.

pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy};
pub use crate::test_runner::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

/// Re-export of the RNG type strategies draw from, handy for custom strategies.
pub use rand::rngs::StdRng as TestRng;
