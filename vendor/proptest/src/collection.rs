//! Collection strategies (`vec`, `hash_set`), mirroring `proptest::collection`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// An inclusive size bound for generated collections.
///
/// Constructed implicitly from `usize`, `a..b` and `a..=b`, matching how upstream's
/// `SizeRange` conversions are used in strategy expressions.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.min..=self.max)
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet<S::Value>` with a target size drawn from `size`.
///
/// As upstream documents, the set may come out smaller than the target when the
/// element strategy produces duplicates; a bounded number of extra draws tries to
/// reach the minimum.
pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S::Value: Eq + Hash,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`hash_set`].
#[derive(Clone, Debug)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut out = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        let max_attempts = target.saturating_mul(4) + 16;
        while out.len() < target && attempts < max_attempts {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let v = vec(0u64..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = vec(any::<u32>(), 3usize..=3).generate(&mut rng);
        assert_eq!(exact.len(), 3);
    }

    #[test]
    fn hash_set_hits_target_for_wide_domains() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = hash_set(any::<u64>(), 1..50).generate(&mut rng);
            assert!((1..50).contains(&s.len()));
        }
    }

    #[test]
    fn hash_set_tolerates_narrow_domains() {
        let mut rng = StdRng::seed_from_u64(4);
        // Only 3 possible values but target up to 10: must terminate, possibly small.
        let s = hash_set(0u64..3, 5..=10).generate(&mut rng);
        assert!(s.len() <= 3);
    }
}
