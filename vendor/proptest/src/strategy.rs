//! Value-generation strategies.
//!
//! Upstream proptest strategies produce a *value tree* supporting shrinking; this
//! offline stand-in generates plain values. The [`Strategy`] trait keeps the same
//! `type Value` associated type so `impl Strategy<Value = T>` signatures written
//! against upstream compile unchanged.

use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of type `Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value using `rng`.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of a fixed value (upstream's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (upstream's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// The strategy returned by [`any`]: uniform over all values of `T`.
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

/// Returns a strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_prim {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen()
            }
        })*
    };
}

impl_arbitrary_prim!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f32, f64
);

impl Arbitrary for char {
    fn arbitrary(rng: &mut StdRng) -> char {
        // Uniform over scalar values, biased toward ASCII half the time (upstream
        // biases similarly so string-ish tests still hit the interesting cases).
        if rng.gen_bool(0.5) {
            rng.gen_range(0x20u32..0x7F) as u8 as char
        } else {
            loop {
                if let Some(c) = char::from_u32(rng.gen_range(0u32..=0x10FFFF)) {
                    return c;
                }
            }
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_any_generate_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let x = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let y = (5usize..=5).generate(&mut rng);
            assert_eq!(y, 5);
            let (a, b, c) = (0u8..3, 1.0f64..2.0, any::<bool>()).generate(&mut rng);
            assert!(a < 3);
            assert!((1.0..2.0).contains(&b));
            let _: bool = c;
        }
    }
}
