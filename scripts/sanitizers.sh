#!/usr/bin/env bash
# Optional sanitizer lanes for the concurrency-sensitive crates.
#
#   scripts/sanitizers.sh tsan   ThreadSanitizer over the ccf-shard and
#                                ccf-telemetry test suites (the two crates with
#                                real cross-thread mutation).
#   scripts/sanitizers.sh miri   Miri over ccf-cuckoo's packed/semisort store
#                                suites (the bit-twiddling kernels most likely
#                                to hide UB).
#
# Both lanes need a nightly toolchain with extra components (rust-src for
# -Zbuild-std, miri for miri). They DETECT what is installed and skip
# gracefully — exit 0 with a "skipped" note — so the CI job stays green on
# runners without nightly while still running the full lane wherever it is
# available. A detected-and-run lane that finds a race or UB fails loudly.
set -euo pipefail

mode="${1:-}"
if [[ "$mode" != "tsan" && "$mode" != "miri" ]]; then
    echo "usage: $0 {tsan|miri}" >&2
    exit 2
fi

# Bounded suites: sanitizers run 10-50x slower than native, so cap the
# property-test case counts well below the CI default.
export PROPTEST_CASES="${PROPTEST_CASES:-16}"

if ! command -v rustup >/dev/null 2>&1; then
    echo "sanitizers[$mode]: skipped — rustup not available"
    exit 0
fi
if ! rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
    echo "sanitizers[$mode]: skipped — no nightly toolchain installed"
    exit 0
fi

host_target="$(rustc -vV | sed -n 's/^host: //p')"

case "$mode" in
tsan)
    if ! rustup component list --toolchain nightly 2>/dev/null \
        | grep -q '^rust-src.*(installed)'; then
        echo "sanitizers[tsan]: skipped — nightly rust-src component not installed"
        exit 0
    fi
    echo "sanitizers[tsan]: ThreadSanitizer over ccf-shard + ccf-telemetry ($host_target)"
    RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -q \
        -Zbuild-std \
        --target "$host_target" \
        -p ccf-shard -p ccf-telemetry
    ;;
miri)
    if ! rustup component list --toolchain nightly 2>/dev/null \
        | grep -q '^miri.*(installed)'; then
        echo "sanitizers[miri]: skipped — nightly miri component not installed"
        exit 0
    fi
    echo "sanitizers[miri]: Miri over ccf-cuckoo packed/semisort store suites"
    # Library unit tests only: the store kernels (bit-packing, SWAR probe,
    # semisort codec) live in-crate, and Miri cannot run the process-spawning
    # integration suites anyway. Filters keep the runtime in minutes.
    MIRIFLAGS="${MIRIFLAGS:--Zmiri-strict-provenance}" \
        cargo +nightly miri test -q -p ccf-cuckoo --lib packed
    MIRIFLAGS="${MIRIFLAGS:--Zmiri-strict-provenance}" \
        cargo +nightly miri test -q -p ccf-cuckoo --lib semisort
    ;;
esac
echo "sanitizers[$mode]: done"
