//! Predicate-only queries (Algorithm 2 / §6.2): specialise a pre-computed CCF into a
//! key filter for one predicate, and hand that filter to a downstream operator that
//! never sees the predicate at all.
//!
//! This is what lets a database keep ONE sketch per table and derive, at query time, the
//! equivalent of a per-predicate Bloom join filter — instead of precomputing a filter
//! for every possible predicate combination (which would grow exponentially).
//!
//! Run with: `cargo run --release --example predicate_prefilter`

use conditional_cuckoo_filters::ccf::{BloomCcf, CcfParams, ChainedCcf, Predicate};

fn main() {
    // A "title"-like table: (movie_id, [kind_id, production_decade]).
    // kind 1 = feature film, 2 = tv movie, 3 = short.
    let rows: Vec<(u64, [u64; 2])> = (0..50_000u64)
        .map(|movie| (movie, [1 + movie % 3, 190 + (movie % 13)]))
        .collect();

    let params = CcfParams {
        num_buckets: 1 << 14,
        entries_per_bucket: 4,
        fingerprint_bits: 12,
        attr_bits: 8,
        num_attrs: 2,
        bloom_bits: 16,
        bloom_hashes: 2,
        seed: 99,
        ..CcfParams::default()
    };

    // Build both variants that support predicate-only queries.
    let mut bloom_ccf = BloomCcf::new(params);
    let mut chained_ccf = ChainedCcf::new(params);
    for (movie, attrs) in &rows {
        bloom_ccf.insert_row(*movie, attrs).unwrap();
        chained_ccf.insert_row(*movie, attrs).unwrap();
    }

    // The predicate: feature films (kind_id = 1) from decade 195.
    let pred = Predicate::any(2).and_eq(0, 1).and_eq(1, 195);
    let truly_matching: Vec<u64> = rows
        .iter()
        .filter(|(_, a)| a[0] == 1 && a[1] == 195)
        .map(|(m, _)| *m)
        .collect();

    // Algorithm 2 on the Bloom CCF: returns a plain cuckoo filter a downstream scan can
    // probe by key only.
    let derived = bloom_ccf.predicate_filter(&pred);
    let survivors = (0..50_000u64).filter(|&m| derived.contains(m)).count();
    let missed = truly_matching
        .iter()
        .filter(|&&m| !derived.contains(m))
        .count();
    println!("Bloom CCF → derived cuckoo filter (Algorithm 2):");
    println!("  truly matching movies : {}", truly_matching.len());
    println!("  keys kept by filter   : {survivors}");
    println!("  false negatives       : {missed} (must be 0)");
    println!(
        "  derived filter size   : {} KiB\n",
        derived.size_bits() / 8 / 1024
    );

    // The chained variant cannot simply erase entries (it would break chains); it
    // returns a marked filter instead (§6.2).
    let marked = chained_ccf.predicate_filter(&pred);
    let survivors = (0..50_000u64).filter(|&m| marked.contains_key(m)).count();
    let missed = truly_matching
        .iter()
        .filter(|&&m| !marked.contains_key(m))
        .count();
    println!("Chained CCF → marked key filter (§6.2):");
    println!("  keys kept by filter   : {survivors}");
    println!("  false negatives       : {missed} (must be 0)");
    println!(
        "  marked filter size    : {} KiB",
        marked.size_bits() / 8 / 1024
    );

    assert_eq!(missed, 0);
    println!("\nA downstream scan can now probe either filter by movie_id alone — the predicate\nhas been baked in, exactly the pre-built join-filter use case of §3.");
}
