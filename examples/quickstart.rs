//! Quickstart: build a Conditional Cuckoo Filter over a keyed table, query it with
//! predicates, and compare against what a plain key-only filter could tell you.
//!
//! Run with: `cargo run --release --example quickstart`

use conditional_cuckoo_filters::ccf::{CcfParams, ChainedCcf, Predicate};

fn main() {
    // A toy "movie_companies"-like table: (movie_id, [company_id, company_type_id]).
    // Movie 10 was produced by company 7 (type 1) and distributed by company 21 (type 2);
    // movie 11 only has a distribution row; movie 12 has three companies.
    let rows: &[(u64, [u64; 2])] = &[
        (10, [7, 1]),
        (10, [21, 2]),
        (11, [21, 2]),
        (12, [7, 1]),
        (12, [8, 1]),
        (12, [33, 2]),
    ];

    // Size and build a chained CCF: 2 attribute columns, defaults otherwise
    // (d = 3 duplicates per bucket pair, b = 6 entries per bucket, 12-bit key
    // fingerprints, 8-bit attribute fingerprints).
    let mut filter = ChainedCcf::new(CcfParams {
        num_buckets: 1 << 8,
        num_attrs: 2,
        ..CcfParams::default()
    });
    for (movie_id, attrs) in rows {
        filter
            .insert_row(*movie_id, attrs)
            .expect("a 256-bucket filter easily holds six rows");
    }

    println!(
        "inserted {} rows into {} occupied entries ({} bits serialized)\n",
        rows.len(),
        filter.occupied_entries(),
        filter.size_bits()
    );

    // Key + predicate queries: "does movie X have a company of type 2?"
    let type2 = Predicate::any(2).and_eq(1, 2);
    for movie in [10u64, 11, 12, 99] {
        println!(
            "movie {movie}: key present = {:<5} | has a type-2 company = {}",
            filter.contains_key(movie),
            filter.query(movie, &type2)
        );
    }

    // Conjunctions work too: "produced by company 7 AND type 1".
    let produced_by_7 = Predicate::any(2).and_eq(0, 7).and_eq(1, 1);
    println!();
    for movie in [10u64, 11, 12] {
        println!(
            "movie {movie}: produced by company 7 = {}",
            filter.query(movie, &produced_by_7)
        );
    }

    // The guarantee that makes this safe to use for pruning work: no false negatives.
    for (movie_id, attrs) in rows {
        let exact = Predicate::any(2).and_eq(0, attrs[0]).and_eq(1, attrs[1]);
        assert!(filter.query(*movie_id, &exact), "no false negatives, ever");
    }
    println!(
        "\nevery inserted row is found by its own (key, predicate) query — no false negatives"
    );
}
