//! Quickstart: build a Conditional Cuckoo Filter over a keyed table with the fallible
//! builder facade, insert rows under *typed* keys (strings here — any `FilterKey`
//! works), and query with predicates.
//!
//! Run with: `cargo run --release --example quickstart`

use conditional_cuckoo_filters::ccf::{AnyCcf, CcfError, ConditionalFilter, VariantKind};

fn main() -> Result<(), CcfError> {
    // A toy "movie_companies"-like table keyed by movie title:
    // (title, [company_id, company_type_id]). "Heat" was produced by company 7
    // (type 1) and distributed by company 21 (type 2); "Ronin" only has a
    // distribution row; "Spartan" has three companies.
    let rows: &[(&str, [u64; 2])] = &[
        ("Heat", [7, 1]),
        ("Heat", [21, 2]),
        ("Ronin", [21, 2]),
        ("Spartan", [7, 1]),
        ("Spartan", [8, 1]),
        ("Spartan", [33, 2]),
    ];

    // Construction is typed and fallible: describe the workload, get a filter or a
    // `ParamsError` value — nothing panics on bad parameters. The defaults follow the
    // paper (d = 3 duplicates per bucket pair, b = 6 entries per bucket, 12-bit key
    // fingerprints, 8-bit attribute fingerprints).
    let mut filter = AnyCcf::builder()
        .variant(VariantKind::Chained)
        .num_attrs(2)
        .expected_rows(rows.len())
        .target_load(0.85)
        .seed(42)
        .build()?;
    for (title, attrs) in rows {
        // `insert_row` accepts any `FilterKey`: &str and String lower through
        // lookup3, u64 keys take the classic hot path bit-identically, and
        // (u64, u64) composites are supported for multi-column join keys.
        filter.insert_row(*title, attrs)?;
    }

    println!(
        "inserted {} rows into {} occupied entries ({} bits serialized)\n",
        rows.len(),
        filter.occupied_entries(),
        filter.size_bits()
    );

    // Key + predicate queries: "does this movie have a company of type 2?".
    // `filter.predicate()` spans the filter's attribute columns, so the arity can
    // never drift out of sync with the filter.
    let type2 = filter.predicate().and_eq(1, 2);
    for movie in ["Heat", "Ronin", "Spartan", "Sphere"] {
        println!(
            "{movie:<8}: key present = {:<5} | has a type-2 company = {}",
            filter.contains_key(movie),
            filter.query(movie, &type2)
        );
    }

    // Conjunctions work too: "produced by company 7 AND type 1".
    let produced_by_7 = filter.predicate().and_eq(0, 7).and_eq(1, 1);
    println!();
    for movie in ["Heat", "Ronin", "Spartan"] {
        println!(
            "{movie:<8}: produced by company 7 = {}",
            filter.query(movie, &produced_by_7)
        );
    }

    // The guarantee that makes this safe to use for pruning work: no false negatives.
    for (title, attrs) in rows {
        let exact = filter.predicate().and_eq(0, attrs[0]).and_eq(1, attrs[1]);
        assert!(filter.query(*title, &exact), "no false negatives, ever");
    }
    println!(
        "\nevery inserted row is found by its own (key, predicate) query — no false negatives"
    );
    Ok(())
}
