//! The §3 star-join scenario: pre-built CCFs push predicates from one table down to the
//! scans of every other table, shrinking hash-join build sides.
//!
//! The example reproduces the paper's introductory query in miniature:
//!
//! ```sql
//! SELECT ci.*, t.title, mc.note
//! FROM cast_info ci, title t, movie_companies mc
//! WHERE t.id = ci.movie_id AND t.id = mc.movie_id
//!   AND ci.role_id = 4 AND t.kind_id = 1 AND mc.company_type_id = 2
//! ```
//!
//! It builds the synthetic IMDB tables, constructs one chained CCF per table, and
//! compares the number of `cast_info` rows a scan must emit (and the hash-table build
//! sizes) with and without CCF pre-filtering.
//!
//! Run with: `cargo run --release --example join_pushdown`

use conditional_cuckoo_filters::ccf::sizing::VariantKind;
use conditional_cuckoo_filters::ccf::{ConditionalFilter, Predicate};
use conditional_cuckoo_filters::join::bridge::ccf_predicate_for;
use conditional_cuckoo_filters::join::filters::{FilterBank, FilterConfig};
use conditional_cuckoo_filters::join::hash_join::BuildSide;
use conditional_cuckoo_filters::workloads::imdb::{SyntheticImdb, TableId};
use conditional_cuckoo_filters::workloads::joblight::{QueryPredicate, QueryTable};

fn main() {
    let db = SyntheticImdb::generate(256, 42);
    let bank = FilterBank::build(&db, FilterConfig::small(VariantKind::Chained));
    println!(
        "synthetic IMDB at 1/256 scale: {} movies, {} total rows; CCF bank = {:.2} MB\n",
        db.num_movies,
        db.total_rows(),
        bank.total_ccf_bits() as f64 / 8.0 / 1024.0 / 1024.0
    );

    // The query's predicates on the two tables whose filters get pushed down (the
    // cast_info predicate role_id = 4 is applied directly by the cast_info scan below).
    let t_pred = QueryTable {
        table: TableId::Title,
        predicates: vec![QueryPredicate::Eq {
            column: 0,
            value: 1,
        }], // kind_id = 1
    };
    let mc_pred = QueryTable {
        table: TableId::MovieCompanies,
        predicates: vec![QueryPredicate::Eq {
            column: 1,
            value: 2,
        }], // company_type_id = 2
    };

    let cast_info = db.table(TableId::CastInfo);
    let title_ccf_pred = ccf_predicate_for(&t_pred);
    let mc_ccf_pred = ccf_predicate_for(&mc_pred);

    // --- Scan of cast_info ------------------------------------------------------------
    let ci_rows_with_pred = (0..cast_info.num_rows())
        .filter(|&r| cast_info.columns[0][r] == 4)
        .count();

    // Key-only pre-built filters (state of the art): the title filter is useless —
    // every movie id is in `title` — and movie_companies only checks key existence.
    let key_filtered = (0..cast_info.num_rows())
        .filter(|&r| {
            cast_info.columns[0][r] == 4 && {
                let k = cast_info.join_keys[r];
                bank.table(TableId::Title).key_filter.contains(k)
                    && bank.table(TableId::MovieCompanies).key_filter.contains(k)
            }
        })
        .count();

    // CCFs: the predicates on title and movie_companies are pushed down into the
    // cast_info scan.
    let ccf_filtered = (0..cast_info.num_rows())
        .filter(|&r| {
            cast_info.columns[0][r] == 4 && {
                let k = cast_info.join_keys[r];
                bank.table(TableId::Title).ccf.query(k, &title_ccf_pred)
                    && bank
                        .table(TableId::MovieCompanies)
                        .ccf
                        .query(k, &mc_ccf_pred)
            }
        })
        .count();

    println!("cast_info scan output (rows emitted):");
    println!("  own predicate only (role_id = 4)        : {ci_rows_with_pred}");
    println!("  + key-only pre-built filters            : {key_filtered}");
    println!("  + conditional cuckoo filters (pushdown) : {ccf_filtered}");
    println!(
        "  reduction factor: key-only = {:.3}, CCF = {:.3}\n",
        key_filtered as f64 / ci_rows_with_pred.max(1) as f64,
        ccf_filtered as f64 / ci_rows_with_pred.max(1) as f64
    );

    // --- Hash-join build sides (§3: smaller build sides fit in memory) -----------------
    let mc = db.table(TableId::MovieCompanies);
    let mc_own_pred = |row: usize| mc.columns[1][row] == 2;
    let build_plain = BuildSide::build(mc, mc_own_pred, 1);
    let title_filter = bank.table(TableId::Title);
    let ci_keyfilter = bank.table(TableId::CastInfo);
    let ci_role4 = Predicate::any(1).and_eq(0, 4);
    let build_ccf = BuildSide::build(
        mc,
        |row| {
            mc_own_pred(row) && {
                let k = mc.join_keys[row];
                // Push the title predicate AND the cast_info predicate down to the
                // movie_companies build side.
                title_filter.ccf.query(k, &title_ccf_pred) && ci_keyfilter.ccf.query(k, &ci_role4)
            }
        },
        1,
    );
    println!("movie_companies hash-table build side (company_type_id = 2):");
    println!(
        "  without CCF pre-filtering : {} rows / {} keys",
        build_plain.num_rows(),
        build_plain.num_keys()
    );
    println!(
        "  with CCF pre-filtering    : {} rows / {} keys",
        build_ccf.num_rows(),
        build_ccf.num_keys()
    );
    println!(
        "  build side shrank to {:.1}% of its unfiltered size",
        100.0 * build_ccf.num_rows() as f64 / build_plain.num_rows().max(1) as f64
    );
}
