//! Chaining vs a plain cuckoo filter under duplicate-key skew — the §10.1 multiset
//! experiment as a runnable demonstration.
//!
//! Generates streams of (key, attribute) rows where the number of duplicates per key is
//! either constant or Zipf-Mandelbrot distributed, inserts them into a plain multiset
//! CCF and a chained CCF of identical geometry, and reports the load factor each
//! sustains before its first failed insertion.
//!
//! Run with: `cargo run --release --example multiset_skew`

use conditional_cuckoo_filters::ccf::{CcfParams, ChainedCcf, ConditionalFilter, PlainCcf};
use conditional_cuckoo_filters::workloads::multiset::{DuplicateDistribution, MultisetStream};

fn fill_until_failure<F: ConditionalFilter>(
    filter: &mut F,
    rows: &[(u64, Vec<u64>)],
) -> (f64, usize) {
    let mut absorbed = 0usize;
    for (key, attrs) in rows {
        if filter.insert_row(*key, attrs).is_err() {
            return (filter.load_factor(), absorbed);
        }
        absorbed += 1;
    }
    (filter.load_factor(), absorbed)
}

fn main() {
    let params = CcfParams {
        num_buckets: 1 << 12,
        entries_per_bucket: 6,
        fingerprint_bits: 12,
        attr_bits: 8,
        num_attrs: 1,
        max_dupes: 3,
        max_chain: None,
        seed: 7,
        ..CcfParams::default()
    };
    let capacity = (1 << 12) * 6;

    println!("filter geometry: 4096 buckets × 6 entries, d = 3, Lmax = ∞\n");
    println!(
        "{:<28} {:>14} {:>14} {:>12} {:>12}",
        "duplicate distribution", "plain load", "chained load", "plain rows", "chained rows"
    );

    for (label, dist) in [
        ("constant, 2 per key", DuplicateDistribution::Constant(2)),
        ("constant, 6 per key", DuplicateDistribution::Constant(6)),
        ("constant, 12 per key", DuplicateDistribution::Constant(12)),
        (
            "zipf-mandelbrot, mean 4",
            DuplicateDistribution::zipf_with_mean(4.0),
        ),
        (
            "zipf-mandelbrot, mean 8",
            DuplicateDistribution::zipf_with_mean(8.0),
        ),
        (
            "zipf-mandelbrot, mean 12",
            DuplicateDistribution::zipf_with_mean(12.0),
        ),
    ] {
        let stream = MultisetStream::new(dist, 1, 7);
        let rows: Vec<(u64, Vec<u64>)> = stream
            .generate_for_capacity(capacity)
            .into_iter()
            .map(|r| (r.key, r.attrs))
            .collect();
        let (plain_load, plain_rows) = fill_until_failure(&mut PlainCcf::new(params), &rows);
        let (chained_load, chained_rows) = fill_until_failure(&mut ChainedCcf::new(params), &rows);
        println!(
            "{label:<28} {plain_load:>14.3} {chained_load:>14.3} {plain_rows:>12} {chained_rows:>12}"
        );
    }

    println!(
        "\nThe plain filter's sustainable load factor collapses as duplicates per key exceed\n\
         what one bucket pair can hold (2b = 12), and collapses almost immediately under the\n\
         skewed Zipf-Mandelbrot distribution; chaining holds ≈0.87 throughout (Figure 4)."
    );
}
